//! Property-based equivalence suite: the engine must be **bit-identical**
//! to the legacy per-trial `View::collect` path for the same `(seed, node)`
//! coin derivation — across random graph families, sizes, radii, identity
//! assignments, seeds, and both deterministic and randomized algorithms.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rlnc_core::derand::boosting::disjoint_union_acceptance;
use rlnc_core::derand::gluing::{anchor_candidates, GluingExperiment};
use rlnc_core::derand::hard_instances::consecutive_cycle_candidates;
use rlnc_core::prelude::*;
use rlnc_engine::{BatchRunner, ExecutionPlan, GluedPlan, UnionPlan};
use rlnc_graph::generators::Family;
use rlnc_graph::{IdAssignment, NodeId};
use rlnc_par::rng::SeedSequence;
use rlnc_par::trials::MonteCarlo;

/// Builds a family member plus inputs and an identity assignment, all
/// derived from one seed (the randomized families draw their structure
/// from it too).
fn instance_parts(
    family: Family,
    n: usize,
    seed: u64,
) -> (rlnc_graph::Graph, Labeling, IdAssignment) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let graph = family.generate(n, &mut rng);
    let input = Labeling::from_fn(&graph, |v| Label::from_u64(u64::from(v.0) % 5));
    let ids = if seed % 2 == 0 {
        IdAssignment::consecutive(&graph)
    } else {
        IdAssignment::random_permutation(&graph, &mut rng)
    };
    (graph, input, ids)
}

/// A deterministic algorithm that reads everything a view exposes:
/// structure, distances, identities, ranks, inputs.
fn structural_algo(radius: u32) -> FnAlgorithm<impl Fn(&View) -> Label + Sync> {
    FnAlgorithm::new(radius, "structural-digest", |v: &View| {
        let mut digest = v.center_id() ^ (v.center_degree() as u64) << 7;
        for i in 0..v.len() {
            digest = digest
                .wrapping_mul(31)
                .wrapping_add(v.id(i) ^ u64::from(v.distance(i)) << 3)
                .wrapping_add(v.input(i).as_u64())
                .wrapping_add(v.rank(i) as u64);
        }
        for w in v.center_neighbors() {
            digest = digest.rotate_left(5) ^ v.id(w);
        }
        Label::from_u64(digest)
    })
}

/// A randomized algorithm that reads its own coins **and** the coins of
/// every node in its view — the shared-randomness semantics whose
/// `(seed, node)` derivation the engine must preserve exactly.
fn coin_mixing_algo(radius: u32) -> FnRandomizedAlgorithm<impl Fn(&View, &Coins) -> Label + Sync> {
    FnRandomizedAlgorithm::new(radius, "coin-mixing", |v: &View, c: &Coins| {
        let mut digest = 0u64;
        for i in 0..v.len() {
            let mut rng = c.for_view_node(v, i);
            digest = digest.wrapping_mul(37).wrapping_add(rng.random::<u64>() >> 8);
        }
        let mut own = c.for_center(v);
        Label::from_u64(digest ^ own.random::<u64>())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn deterministic_runs_are_bit_identical(
        family_index in 0usize..Family::ALL.len(),
        n in 8usize..48,
        radius in 0u32..4,
        seed in 0u64..1_000_000,
    ) {
        let family = Family::ALL[family_index];
        let (graph, input, ids) = instance_parts(family, n, seed);
        let instance = Instance::new(&graph, &input, &ids);
        let algo = structural_algo(radius);
        let plan = ExecutionPlan::for_instance(&instance, radius);
        let legacy = Simulator::sequential().run(&algo, &instance);
        prop_assert_eq!(&plan.run(&algo), &legacy);
        prop_assert_eq!(&BatchRunner::new().run(&algo, &plan), &legacy);
    }

    #[test]
    fn randomized_runs_are_bit_identical(
        family_index in 0usize..Family::ALL.len(),
        n in 8usize..48,
        radius in 0u32..3,
        seed in 0u64..1_000_000,
        execution in 0u64..1_000,
    ) {
        let family = Family::ALL[family_index];
        let (graph, input, ids) = instance_parts(family, n, seed);
        let instance = Instance::new(&graph, &input, &ids);
        let algo = coin_mixing_algo(radius);
        let plan = ExecutionPlan::for_instance(&instance, radius);
        let execution_seed = SeedSequence::new(seed).child(execution);
        let legacy = Simulator::sequential().run_randomized(&algo, &instance, execution_seed);
        prop_assert_eq!(&plan.run_randomized(&algo, execution_seed), &legacy);
        prop_assert_eq!(
            &BatchRunner::new().run_randomized(&algo, &plan, execution_seed),
            &legacy
        );
    }

    #[test]
    fn monte_carlo_success_streams_are_bit_identical(
        family_index in 0usize..Family::ALL.len(),
        n in 8usize..32,
        seed in 0u64..1_000_000,
    ) {
        let family = Family::ALL[family_index];
        let (graph, input, ids) = instance_parts(family, n, seed);
        let instance = Instance::new(&graph, &input, &ids);
        let algo = coin_mixing_algo(1);
        let plan = ExecutionPlan::for_instance(&instance, 1);
        let success = |out: &Labeling| out.get(NodeId(0)).as_u64() % 3 == 0;
        let legacy = MonteCarlo::new(60).with_seed(seed ^ 0xBEEF).estimate(|s| {
            let out = Simulator::sequential().run_randomized(&algo, &instance, s);
            success(&out)
        });
        let engine = BatchRunner::new().with_block(13).estimate(
            &algo, &plan, 60, seed ^ 0xBEEF, success,
        );
        prop_assert_eq!(engine.successes, legacy.successes);
        prop_assert_eq!(engine.p_hat, legacy.p_hat);
    }

    #[test]
    fn decision_plans_and_scratches_are_bit_identical(
        family_index in 0usize..Family::ALL.len(),
        n in 8usize..32,
        seed in 0u64..1_000_000,
        trial in 0u64..500,
    ) {
        let family = Family::ALL[family_index];
        let (graph, input, ids) = instance_parts(family, n, seed);
        let output = Labeling::from_fn(&graph, |v| Label::from_u64(u64::from(v.0) % 2));
        let io = IoConfig::new(&graph, &input, &output);
        // A decider reading outputs, neighbor coins, and its own coins.
        let decider = FnRandomizedDecider::new(1, "noisy-conflict", |view: &View, coins: &Coins| {
            let mine = view.output(view.center_local());
            let conflict = view.center_neighbors().iter().any(|&i| view.output(i) == mine);
            if !conflict {
                true
            } else {
                !coins.for_center(view).random_bool(0.8)
            }
        });
        let execution_seed = SeedSequence::new(seed ^ 0xD0).child(trial);
        let legacy = decide_randomized(&decider, &io, &ids, execution_seed);

        let plan = ExecutionPlan::for_io(&io, &ids, 1);
        prop_assert_eq!(plan.decide_randomized(&decider, execution_seed), legacy);

        // The construct-then-decide shape: a construction plan plus a
        // scratch whose outputs are refreshed per trial.
        let instance = Instance::new(&graph, &input, &ids);
        let construction = ExecutionPlan::for_instance(&instance, 1);
        let mut scratch = construction.decision_scratch();
        prop_assert_eq!(
            scratch.decide_randomized(&decider, &output, execution_seed),
            legacy
        );
        // And again with different outputs, to prove the refresh overwrites.
        let flipped = Labeling::from_fn(&graph, |v| Label::from_u64(u64::from(v.0 + 1) % 2));
        let io_flipped = IoConfig::new(&graph, &input, &flipped);
        prop_assert_eq!(
            scratch.decide_randomized(&decider, &flipped, execution_seed),
            decide_randomized(&decider, &io_flipped, &ids, execution_seed)
        );
    }

    #[test]
    fn construction_success_matches_engine_estimate(
        n in 8usize..24,
        seed in 0u64..100_000,
    ) {
        // The Simulator's own cached-view Monte-Carlo path and the engine's
        // BatchRunner must agree with each other (both being bit-identical
        // to the historical per-trial resimulation stream).
        let (graph, input, ids) = instance_parts(Family::Cycle, n, seed);
        let instance = Instance::new(&graph, &input, &ids);
        let algo = FnRandomizedAlgorithm::new(0, "bit", |v: &View, c: &Coins| {
            Label::from_bool(c.for_center(v).random_bool(0.5))
        });
        let lang = FnLanguage::new("first-node-true", |io: &IoConfig<'_>| {
            io.output.get(NodeId(0)).as_bool()
        });
        let legacy = Simulator::new().construction_success(&algo, &instance, &lang, 40, seed);
        let plan = ExecutionPlan::for_instance(&instance, 0);
        let engine = BatchRunner::new().estimate(&algo, &plan, 40, seed, |out| {
            let io = IoConfig::from_instance(&instance, out);
            lang.contains(&io)
        });
        prop_assert_eq!(engine.successes, legacy.successes);
    }

    #[test]
    fn union_plans_match_legacy_disjoint_union_acceptance(
        part_a in 4usize..10,
        part_b in 4usize..10,
        nu in 1usize..5,
        seed in 0u64..100_000,
    ) {
        // The Claim-3 kernel: the engine's UnionPlan must reproduce the
        // legacy per-trial estimator bit-for-bit — same union construction
        // (cycled parts, disjoint identity ranges), same (master, trial)
        // seed tree, same child(0)/child(1) constructor/decider split.
        let hard = consecutive_cycle_candidates([part_a, part_b]);
        let constructor = coin_mixing_algo(0);
        let decider = parity_decider();
        let legacy = disjoint_union_acceptance(&constructor, &decider, &hard, nu, 60, seed);
        let parts: Vec<_> = hard.iter().map(|h| (&h.graph, &h.input, &h.ids)).collect();
        let union = UnionPlan::for_parts(&parts, nu, 0, 1);
        prop_assert_eq!(union.components(), nu);
        for runner in [BatchRunner::new(), BatchRunner::sequential(), BatchRunner::new().with_block(7)] {
            let engine = runner.union_acceptance(&union, &constructor, &decider, 60, seed);
            prop_assert_eq!(engine.successes, legacy.successes);
            prop_assert_eq!(engine.p_hat, legacy.p_hat);
        }
    }

    #[test]
    fn glued_plans_match_legacy_gluing_experiment(
        part_size in 8usize..16,
        nu in 2usize..5,
        seed in 0u64..100_000,
    ) {
        // The Claims-4/5 kernels: all-nodes acceptance and the
        // far-from-every-anchor event, against the legacy GluingExperiment
        // estimators (which re-run one BFS per anchor per trial to find the
        // participation set the GluedPlan precomputes).
        let parts = consecutive_cycle_candidates(vec![part_size; nu]);
        let anchors: Vec<NodeId> = parts
            .iter()
            .map(|h| anchor_candidates(h, 0, 1, 0.75)[0])
            .collect();
        let experiment = GluingExperiment::build(parts, anchors, 0, 1);
        let constructor = coin_mixing_algo(0);
        let decider = parity_decider();

        let glued_anchors: Vec<NodeId> = (0..nu).map(|i| experiment.glued_anchor(i)).collect();
        let instance = experiment.as_hard_instance();
        let plan = GluedPlan::new(
            &instance.as_instance(),
            glued_anchors,
            experiment.exclusion_radius,
            0,
            1,
        );

        let far_legacy = experiment.acceptance_far_from_all_anchors(&constructor, &decider, 50, seed);
        let full_legacy = experiment.acceptance(&constructor, &decider, 50, seed ^ 0xF);
        for runner in [BatchRunner::new(), BatchRunner::sequential()] {
            let far = runner.glued_far_acceptance(&plan, &constructor, &decider, 50, seed);
            prop_assert_eq!(far.successes, far_legacy.successes);
            let full = runner.glued_acceptance(&plan, &constructor, &decider, 50, seed ^ 0xF);
            prop_assert_eq!(full.successes, full_legacy.successes);
        }
    }
}

/// A radius-1 decider mixing outputs and coins — enough entropy to catch
/// any stream divergence between the composite kernels and the legacy
/// estimators.
fn parity_decider() -> FnRandomizedDecider<impl Fn(&View, &Coins) -> bool + Sync> {
    FnRandomizedDecider::new(1, "parity-coin", |view: &View, coins: &Coins| {
        let mut digest = view.output(view.center_local()).as_u64();
        for &i in &view.center_neighbors() {
            digest = digest.wrapping_mul(31).wrapping_add(view.output(i).as_u64());
        }
        let mut rng = coins.for_center(view);
        (digest ^ rng.random::<u64>()) % 5 != 0
    })
}

/// With the counting allocator installed, the engine's per-trial decision
/// loop — the hot path every Monte-Carlo estimate spins on — must perform
/// zero heap allocations, *with observability enabled*. This pins the
/// obs cost model: resolved counter handles are plain atomic adds.
#[cfg(feature = "count-alloc")]
#[test]
fn instrumented_decision_loop_does_not_allocate() {
    use rlnc_core::decision::FnRandomizedDecider;
    use rlnc_obs::alloc_counter::allocations;

    let (graph, input, ids) = instance_parts(Family::Cycle, 24, 3);
    let output = Labeling::from_fn(&graph, |v| Label::from_u64(u64::from(v.0) % 2));
    let instance = Instance::new(&graph, &input, &ids);
    let plan = ExecutionPlan::for_instance(&instance, 1);
    let mut scratch = plan.decision_scratch();
    let decider = FnRandomizedDecider::new(1, "coin-parity", |view: &View, coins: &Coins| {
        let mine = view.output(view.center_local()).as_u64();
        coins.for_center(view).random::<u64>().wrapping_add(mine) % 3 != 0
    });

    rlnc_obs::set_enabled(true);
    let root = SeedSequence::new(11);
    // Warm-up: interns the obs cells and materializes every view's output
    // buffer. The always-accept pass matters — `decide_randomized`
    // short-circuits on the first rejecting node, so a rejecting warm-up
    // trial would leave deeper views untouched and their first real
    // refresh would allocate mid-measurement.
    let accept_all = FnRandomizedDecider::new(1, "accept-all", |_: &View, _: &Coins| true);
    scratch.decide_randomized(&accept_all, &output, root.child(0));
    for trial in 0..8u64 {
        scratch.decide_randomized(&decider, &output, root.child(trial));
    }
    let before = allocations();
    for trial in 8..1008u64 {
        scratch.decide_randomized(&decider, &output, root.child(trial));
    }
    let after = allocations();
    rlnc_obs::set_enabled(false);
    assert_eq!(
        after - before,
        0,
        "instrumented decision loop allocated {} times over 1000 trials",
        after - before
    );
}

/// Pinned seed-0 regression: the exact seed the E6/E7 drivers run at.
#[test]
fn union_and_glued_kernels_match_legacy_at_seed_zero() {
    let hard = consecutive_cycle_candidates([12]);
    let constructor = coin_mixing_algo(0);
    let decider = parity_decider();
    for nu in [1usize, 4, 8] {
        let legacy = disjoint_union_acceptance(&constructor, &decider, &hard, nu, 200, 0);
        let parts: Vec<_> = hard.iter().map(|h| (&h.graph, &h.input, &h.ids)).collect();
        let union = UnionPlan::for_parts(&parts, nu, 0, 1);
        let engine = BatchRunner::new().union_acceptance(&union, &constructor, &decider, 200, 0);
        assert_eq!(engine.successes, legacy.successes, "union nu={nu}");
    }

    let parts = consecutive_cycle_candidates(vec![16; 3]);
    let anchors: Vec<NodeId> = parts
        .iter()
        .map(|h| anchor_candidates(h, 0, 1, 0.75)[0])
        .collect();
    let experiment = GluingExperiment::build(parts, anchors, 0, 1);
    let glued_anchors: Vec<NodeId> = (0..3).map(|i| experiment.glued_anchor(i)).collect();
    let instance = experiment.as_hard_instance();
    let plan = GluedPlan::new(&instance.as_instance(), glued_anchors, 1, 0, 1);
    let far_legacy = experiment.acceptance_far_from_all_anchors(&constructor, &decider, 200, 0);
    let far_engine = BatchRunner::new().glued_far_acceptance(&plan, &constructor, &decider, 200, 0);
    assert_eq!(far_engine.successes, far_legacy.successes);
    let full_legacy = experiment.acceptance(&constructor, &decider, 200, 0);
    let full_engine = BatchRunner::new().glued_acceptance(&plan, &constructor, &decider, 200, 0);
    assert_eq!(full_engine.successes, full_legacy.successes);
}

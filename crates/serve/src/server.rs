//! The resident sweep service: a Unix-socket / TCP listener that serves
//! concurrent sweep requests with warm plan caches.
//!
//! ## Lifetime of the warm cache
//!
//! [`BoundServer::serve`] enables the process-global shared plan cache in
//! `rlnc-engine` before accepting connections, so every `run` request's
//! workload preparation routes through it. Plans are pure functions of
//! instance content; the first request for a scenario pays the planning
//! cost (misses), repeat requests at the same scale reuse the resident
//! plans (hits) — that is the whole point of staying resident. Each
//! `run-end` line reports the request's hit/miss deltas so clients (and
//! CI) can observe the reuse; under concurrent requests the deltas are
//! attributed to whichever requests were in flight.
//!
//! ## Concurrency and streaming
//!
//! Each connection is served on its own scoped thread; a `run` request
//! executes its grid points one at a time and writes each record line as
//! soon as the point completes, so clients see results incrementally.
//! Records are bit-identical to a single-process run because every grid
//! point's seed branch and setup are independent (the executor's seed-tree
//! discipline).

use crate::protocol::{Request, Response, StatusReport};
use crate::shard::ShardSpec;
use rlnc_obs::{LazyCounter, Section};
use rlnc_sweep::{Registry, SweepExecutor};
use std::fmt;
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

// Request/record totals are functions of the request history alone —
// deterministic; they complement the per-server atomics surfaced by
// `status` (the obs copies land in `--trace-out` exports).
static OBS_REQUESTS: LazyCounter = LazyCounter::new("serve.requests", Section::Deterministic);
static OBS_RECORDS: LazyCounter =
    LazyCounter::new("serve.records_streamed", Section::Deterministic);
static OBS_ERRORS: LazyCounter = LazyCounter::new("serve.errors", Section::Deterministic);

/// How long a connection handler blocks in `read` before re-checking the
/// shutdown flag; also the accept loop's poll interval.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Where the service listens: a filesystem Unix socket or a TCP address.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Endpoint {
    /// A Unix-domain socket at the given path (`unix:/path/to.sock`).
    Unix(PathBuf),
    /// A TCP address (`tcp:127.0.0.1:7070`; port 0 picks a free port,
    /// reported back by [`BoundServer::endpoint`]).
    Tcp(String),
}

impl Endpoint {
    /// Parses the CLI spelling: `unix:PATH` or `tcp:HOST:PORT`.
    pub fn parse(raw: &str) -> Result<Endpoint, String> {
        if let Some(path) = raw.strip_prefix("unix:") {
            if path.is_empty() {
                return Err("unix endpoint needs a socket path (unix:/path/to.sock)".into());
            }
            Ok(Endpoint::Unix(PathBuf::from(path)))
        } else if let Some(addr) = raw.strip_prefix("tcp:") {
            if addr.is_empty() {
                return Err("tcp endpoint needs an address (tcp:127.0.0.1:7070)".into());
            }
            Ok(Endpoint::Tcp(addr.to_string()))
        } else {
            Err(format!(
                "'{raw}' is not an endpoint: expected unix:PATH or tcp:HOST:PORT"
            ))
        }
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::Unix(path) => write!(f, "unix:{}", path.display()),
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
        }
    }
}

/// One accepted connection, Unix or TCP.
enum Conn {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Conn {
    fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
        }
    }

    fn configure(&self) -> io::Result<()> {
        match self {
            Conn::Unix(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(Some(POLL_INTERVAL))
            }
            Conn::Tcp(s) => {
                s.set_nonblocking(false)?;
                s.set_read_timeout(Some(POLL_INTERVAL))
            }
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.read(buf),
            Conn::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Unix(s) => s.write(buf),
            Conn::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Unix(s) => s.flush(),
            Conn::Tcp(s) => s.flush(),
        }
    }
}

enum Listener {
    Unix(UnixListener),
    Tcp(TcpListener),
}

impl Listener {
    fn set_nonblocking(&self) -> io::Result<()> {
        match self {
            Listener::Unix(l) => l.set_nonblocking(true),
            Listener::Tcp(l) => l.set_nonblocking(true),
        }
    }

    fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
        }
    }
}

/// The resident sweep service: registry + per-process counters.
#[derive(Debug)]
pub struct SweepServer {
    registry: Registry,
    requests: AtomicU64,
    records_streamed: AtomicU64,
    errors: AtomicU64,
    active: AtomicU64,
    shutdown: AtomicBool,
}

impl Default for SweepServer {
    fn default() -> Self {
        SweepServer::new()
    }
}

/// A [`SweepServer`] bound to its endpoint, ready to
/// [`serve`](BoundServer::serve).
pub struct BoundServer {
    server: SweepServer,
    listener: Listener,
    endpoint: Endpoint,
}

impl SweepServer {
    /// A server over the built-in scenario registry.
    pub fn new() -> Self {
        SweepServer {
            registry: Registry::builtin(),
            requests: AtomicU64::new(0),
            records_streamed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            active: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Binds to `endpoint`. A *stale* Unix socket file at the path — one no
    /// server answers on — is removed first; if a live server is still
    /// listening there, binding fails instead of silently stealing its
    /// endpoint. A TCP port of 0 is resolved to the actual bound port in
    /// the returned server's [`endpoint`](BoundServer::endpoint).
    pub fn bind(self, endpoint: &Endpoint) -> Result<BoundServer, String> {
        match endpoint {
            Endpoint::Unix(path) => {
                match UnixStream::connect(path) {
                    Ok(_) => {
                        return Err(format!(
                            "cannot bind {endpoint}: a server is already listening on this \
                             socket (remove the file only if you are sure it is dead)"
                        ));
                    }
                    // Nothing there yet: bind will create the file.
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    // A socket exists but no one answers — a dead server's
                    // leftover: reclaim the path. Anything that is not a
                    // socket is left alone; the bind below reports the
                    // address-in-use error.
                    Err(_) => {
                        use std::os::unix::fs::FileTypeExt;
                        let stale_socket = std::fs::metadata(path)
                            .map(|m| m.file_type().is_socket())
                            .unwrap_or(false);
                        if stale_socket {
                            let _ = std::fs::remove_file(path);
                        }
                    }
                }
                let listener = UnixListener::bind(path)
                    .map_err(|e| format!("cannot bind {}: {e}", endpoint))?;
                Ok(BoundServer {
                    server: self,
                    listener: Listener::Unix(listener),
                    endpoint: endpoint.clone(),
                })
            }
            Endpoint::Tcp(addr) => {
                let listener = TcpListener::bind(addr)
                    .map_err(|e| format!("cannot bind {}: {e}", endpoint))?;
                let actual = listener
                    .local_addr()
                    .map_err(|e| format!("cannot resolve bound address: {e}"))?;
                Ok(BoundServer {
                    server: self,
                    listener: Listener::Tcp(listener),
                    endpoint: Endpoint::Tcp(actual.to_string()),
                })
            }
        }
    }

    fn status_report(&self) -> StatusReport {
        let cache = rlnc_engine::shared_plan_cache_stats();
        StatusReport {
            requests: self.requests.load(Ordering::Acquire),
            records_streamed: self.records_streamed.load(Ordering::Acquire),
            errors: self.errors.load(Ordering::Acquire),
            active_connections: self.active.load(Ordering::Acquire),
            scenarios: self.registry.names().len() as u64,
            plan_cache_hits: cache.hits,
            plan_cache_misses: cache.misses,
            plan_cache_plans: cache.plans,
        }
    }

    fn send(writer: &mut Conn, response: &Response) -> io::Result<()> {
        writer.write_all(response.to_json().as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()
    }

    fn send_error(&self, writer: &mut Conn, message: String) -> io::Result<()> {
        self.errors.fetch_add(1, Ordering::AcqRel);
        OBS_ERRORS.inc();
        Self::send(
            writer,
            &Response::Error {
                message,
            },
        )
    }

    /// Streams one `run` request: grid points execute one at a time (each
    /// an independent seed branch, so records match a full run bit-for-
    /// bit) and every record line is flushed as soon as it completes.
    fn handle_run(
        &self,
        writer: &mut Conn,
        scenario: &str,
        scale: rlnc_par::Scale,
        seed: u64,
        shard: Option<ShardSpec>,
    ) -> io::Result<()> {
        let Some(spec) = self.registry.get(scenario) else {
            return self.send_error(
                writer,
                format!(
                    "unknown scenario: {scenario} (available: {})",
                    self.registry.names().join(", ")
                ),
            );
        };
        let shard = shard.unwrap_or_else(ShardSpec::full);
        let executor = SweepExecutor::new(scale).with_seed(seed);
        let points = spec.grid(scale).iter().filter(|p| shard.owns(p.index)).count() as u64;
        let cache_before = rlnc_engine::shared_plan_cache_stats();
        let pool_before = rlnc_par::pool::stats();
        Self::send(
            writer,
            &Response::RunStart {
                scenario: spec.name.clone(),
                description: spec.description.clone(),
                workload: spec.workload.name().to_string(),
                scale: scale.name().to_string(),
                master_seed: seed,
                points,
            },
        )?;
        // One streamed run: the spec is validated and the grid enumerated
        // once, and the obs counters (`sweep.runs`, the resume span) match
        // a local sharded run of the same points.
        let streamed = executor.stream_where(
            spec,
            &[],
            |p| shard.owns(p.index),
            |record| {
                Self::send(writer, &Response::Record { record })?;
                self.records_streamed.fetch_add(1, Ordering::AcqRel);
                OBS_RECORDS.inc();
                Ok::<(), io::Error>(())
            },
        )?;
        let cache_after = rlnc_engine::shared_plan_cache_stats();
        let pool_after = rlnc_par::pool::stats();
        Self::send(
            writer,
            &Response::RunEnd {
                records: streamed,
                plan_cache_hits_delta: cache_after.hits.saturating_sub(cache_before.hits),
                plan_cache_misses_delta: cache_after.misses.saturating_sub(cache_before.misses),
                pool_tasks_delta: pool_after.tasks.saturating_sub(pool_before.tasks),
                pool_steals_delta: pool_after.steals.saturating_sub(pool_before.steals),
                pool_parks_delta: pool_after.parks.saturating_sub(pool_before.parks),
            },
        )
    }

    fn dispatch(&self, writer: &mut Conn, line: &str) -> io::Result<bool> {
        let request = match Request::from_json(line) {
            Ok(request) => request,
            Err(e) => {
                self.send_error(writer, format!("bad request: {e}"))?;
                return Ok(true);
            }
        };
        self.requests.fetch_add(1, Ordering::AcqRel);
        OBS_REQUESTS.inc();
        match request {
            Request::ListScenarios => {
                let mut count = 0u64;
                for spec in self.registry.iter() {
                    Self::send(
                        writer,
                        &Response::Scenario {
                            name: spec.name.clone(),
                            description: spec.description.clone(),
                            summary: spec.summary(),
                        },
                    )?;
                    count += 1;
                }
                Self::send(writer, &Response::ScenariosDone { count })?;
            }
            Request::Run {
                scenario,
                scale,
                seed,
                shard,
            } => self.handle_run(writer, &scenario, scale, seed, shard)?,
            Request::Status => Self::send(writer, &Response::Status(self.status_report()))?,
            Request::Shutdown => {
                Self::send(writer, &Response::ShuttingDown)?;
                self.shutdown.store(true, Ordering::Release);
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Serves one connection until EOF, a write failure, or shutdown.
    fn handle_connection(&self, conn: Conn) {
        self.active.fetch_add(1, Ordering::AcqRel);
        let result = self.connection_loop(conn);
        self.active.fetch_sub(1, Ordering::AcqRel);
        // A dropped client mid-stream is normal churn, not a server error.
        let _ = result;
    }

    fn connection_loop(&self, conn: Conn) -> io::Result<()> {
        conn.configure()?;
        let mut writer = conn.try_clone()?;
        let mut reader = BufReader::new(conn);
        // The accumulator persists across read timeouts so a request line
        // arriving in pieces is never truncated: read_line appends to it
        // and only a terminal '\n' dispatches.
        let mut line = String::new();
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => return Ok(()), // client EOF
                Ok(_) if line.ends_with('\n') => {
                    let trimmed = line.trim();
                    if !trimmed.is_empty() && !self.dispatch(&mut writer, trimmed)? {
                        return Ok(());
                    }
                    line.clear();
                }
                Ok(_) => {} // partial final line; next read returns 0
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    if self.shutdown.load(Ordering::Acquire) {
                        return Ok(());
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

impl BoundServer {
    /// The endpoint actually bound (TCP port 0 resolved).
    pub fn endpoint(&self) -> &Endpoint {
        &self.endpoint
    }

    /// Accepts and serves connections until a `shutdown` request arrives,
    /// then drains in-flight connections and returns. Enables the
    /// process-global shared plan cache so repeat requests hit warm plans.
    pub fn serve(self) -> Result<(), String> {
        rlnc_engine::set_shared_plan_cache(true);
        let BoundServer {
            server,
            listener,
            endpoint,
        } = self;
        listener
            .set_nonblocking()
            .map_err(|e| format!("cannot poll listener: {e}"))?;
        let result: io::Result<()> = std::thread::scope(|scope| {
            while !server.shutdown.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok(conn) => {
                        let server = &server;
                        scope.spawn(move || server.handle_connection(conn));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(POLL_INTERVAL);
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
            Ok(())
        });
        if let Endpoint::Unix(path) = &endpoint {
            let _ = std::fs::remove_file(path);
        }
        result.map_err(|e| format!("accept loop failed: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_parse_and_display() {
        assert_eq!(
            Endpoint::parse("unix:/tmp/rlnc.sock").unwrap(),
            Endpoint::Unix(PathBuf::from("/tmp/rlnc.sock"))
        );
        assert_eq!(
            Endpoint::parse("tcp:127.0.0.1:7070").unwrap(),
            Endpoint::Tcp("127.0.0.1:7070".into())
        );
        assert_eq!(
            Endpoint::parse("unix:/tmp/a.sock").unwrap().to_string(),
            "unix:/tmp/a.sock"
        );
        assert!(Endpoint::parse("/tmp/bare-path").is_err());
        assert!(Endpoint::parse("unix:").is_err());
        assert!(Endpoint::parse("tcp:").is_err());
        assert!(Endpoint::parse("udp:1.2.3.4:5").is_err());
    }

    #[test]
    fn binding_a_live_unix_socket_fails_instead_of_stealing_it() {
        let path = std::env::temp_dir()
            .join(format!("rlnc-serve-bind-test-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let endpoint = Endpoint::Unix(path.clone());

        // First bind succeeds and holds the socket live.
        let first = SweepServer::new().bind(&endpoint).expect("first bind");
        let Err(err) = SweepServer::new().bind(&endpoint) else {
            panic!("second bind must fail");
        };
        assert!(err.contains("already listening"), "unexpected error: {err}");
        // The live server's socket file is untouched.
        assert!(path.exists(), "second bind must not unlink the live socket");
        drop(first);

        // Once the first server is gone the file is a stale socket and the
        // path can be reclaimed.
        assert!(path.exists(), "dropping the listener leaves a stale socket file");
        let reclaimed = SweepServer::new().bind(&endpoint).expect("stale socket reclaimed");
        drop(reclaimed);

        // A non-socket file at the path is never deleted: bind fails.
        let _ = std::fs::remove_file(&path);
        std::fs::write(&path, b"not a socket").unwrap();
        let Err(err) = SweepServer::new().bind(&endpoint) else {
            panic!("regular file must not bind");
        };
        assert!(err.contains("cannot bind"), "unexpected error: {err}");
        assert_eq!(std::fs::read(&path).unwrap(), b"not a socket");
        let _ = std::fs::remove_file(&path);
    }
}

//! # rlnc-serve — sharded sweep execution and a resident sweep service
//!
//! The sweep executor's `(scenario, point, trial)` seed tree makes every
//! grid point an independent, bit-reproducible unit of work, so a
//! scenario partitions trivially. This crate turns that property into two
//! layers of infrastructure:
//!
//! * [`shard`] — [`ShardSpec`]: a deterministic round-robin partition of a
//!   scenario's grid points. `sweep --shard i/N` runs one shard per
//!   process; `sweep-merge` reassembles the N exports into a document
//!   byte-identical to the single-process run (`emit::merge_runs`).
//! * [`protocol`] — the line-delimited JSON wire protocol of the resident
//!   service: [`Request`]s (`list-scenarios`, `run`, `status`,
//!   `shutdown`) and streamed [`Response`] lines, built on the exact JSON
//!   layer in `rlnc-sweep::emit` so streamed records reassemble into
//!   byte-identical exports.
//! * [`server`] — [`SweepServer`]: listens on a Unix socket or TCP
//!   address ([`Endpoint`]), serves concurrent clients on scoped threads,
//!   streams `RunRecord` lines back as grid points complete, and keeps
//!   the process-global `rlnc-engine` plan cache warm across requests
//!   (per-request hit deltas are reported on every `run-end` line).
//! * [`client`] — [`Connection`]: a client for that protocol, used by the
//!   `serve-client` CLI subcommand, the tests, and CI.
//!
//! Everything here is plain `std` — no new dependencies; the workspace
//! builds hermetically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;
pub mod shard;

pub use client::{connect, connect_with_retry, Connection, RunOutcome};
pub use protocol::{Request, Response, StatusReport};
pub use server::{BoundServer, Endpoint, SweepServer};
pub use shard::ShardSpec;

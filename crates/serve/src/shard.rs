//! Deterministic round-robin partitioning of a scenario's grid points.

use std::fmt;

/// One shard of an `N`-way partition of a scenario's grid.
///
/// Shards are 1-based (`1 <= index <= count`, matching the CLI's
/// `--shard i/N` spelling) and assign grid points round-robin over the
/// ordered point list: shard `i` owns every point with
/// `point.index % count == index - 1`. Round-robin keeps shards balanced
/// (sizes differ by at most one point) and stable — the partition depends
/// only on `(index, count)` and the grid enumeration order, never on
/// timing or thread schedule, so re-running a shard reproduces exactly the
/// same records.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardSpec {
    /// 1-based shard index.
    pub index: u64,
    /// Total number of shards.
    pub count: u64,
}

impl ShardSpec {
    /// Validates and builds a shard spec. `count` must be at least 1 and
    /// `index` within `1..=count`.
    pub fn new(index: u64, count: u64) -> Result<ShardSpec, String> {
        if count == 0 {
            return Err("shard count must be at least 1".into());
        }
        if index == 0 || index > count {
            return Err(format!(
                "shard index {index} out of range 1..={count} (shards are 1-based)"
            ));
        }
        Ok(ShardSpec { index, count })
    }

    /// Parses the CLI spelling `INDEX/COUNT` (e.g. `2/4`).
    pub fn parse(raw: &str) -> Result<ShardSpec, String> {
        let Some((index_raw, count_raw)) = raw.split_once('/') else {
            return Err(format!("'{raw}' is not INDEX/COUNT (e.g. 2/4)"));
        };
        let index = index_raw
            .parse::<u64>()
            .map_err(|_| format!("'{raw}': shard index '{index_raw}' is not an unsigned integer"))?;
        let count = count_raw
            .parse::<u64>()
            .map_err(|_| format!("'{raw}': shard count '{count_raw}' is not an unsigned integer"))?;
        ShardSpec::new(index, count)
    }

    /// The trivial 1/1 partition (every point).
    pub fn full() -> ShardSpec {
        ShardSpec { index: 1, count: 1 }
    }

    /// Whether this shard owns the grid point at `point_index`.
    pub fn owns(&self, point_index: u64) -> bool {
        point_index % self.count == self.index - 1
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_partition_every_point_exactly_once() {
        for count in 1..=6u64 {
            for point in 0..40u64 {
                let owners: Vec<u64> = (1..=count)
                    .filter(|&i| ShardSpec::new(i, count).unwrap().owns(point))
                    .collect();
                assert_eq!(owners.len(), 1, "point {point} count {count}: {owners:?}");
            }
        }
    }

    #[test]
    fn shards_are_balanced() {
        let points = 41u64;
        let count = 4u64;
        let sizes: Vec<usize> = (1..=count)
            .map(|i| {
                let shard = ShardSpec::new(i, count).unwrap();
                (0..points).filter(|&p| shard.owns(p)).count()
            })
            .collect();
        assert_eq!(sizes.iter().sum::<usize>(), points as usize);
        assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    #[test]
    fn parse_accepts_the_cli_spelling_and_rejects_malformed_input() {
        assert_eq!(ShardSpec::parse("2/4").unwrap(), ShardSpec { index: 2, count: 4 });
        assert_eq!(ShardSpec::parse("1/1").unwrap(), ShardSpec::full());
        assert!(ShardSpec::parse("0/4").is_err(), "shards are 1-based");
        assert!(ShardSpec::parse("5/4").is_err(), "index beyond count");
        assert!(ShardSpec::parse("x/y").is_err(), "non-numeric");
        assert!(ShardSpec::parse("3").is_err(), "missing the slash");
        assert!(ShardSpec::parse("3/0").is_err(), "zero shards");
        assert!(ShardSpec::parse("-1/4").is_err(), "negative index");
    }

    #[test]
    fn display_round_trips_through_parse() {
        let shard = ShardSpec::new(3, 5).unwrap();
        assert_eq!(ShardSpec::parse(&shard.to_string()).unwrap(), shard);
    }
}

//! A client for the resident sweep service's wire protocol.

use crate::protocol::{Request, Response, StatusReport};
use crate::server::Endpoint;
use crate::shard::ShardSpec;
use rlnc_par::Scale;
use rlnc_sweep::{RunRecord, SweepRun};
use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::time::{Duration, Instant};

enum ClientStream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl ClientStream {
    fn try_clone(&self) -> io::Result<ClientStream> {
        match self {
            ClientStream::Unix(s) => s.try_clone().map(ClientStream::Unix),
            ClientStream::Tcp(s) => s.try_clone().map(ClientStream::Tcp),
        }
    }
}

impl Read for ClientStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            ClientStream::Unix(s) => s.read(buf),
            ClientStream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for ClientStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            ClientStream::Unix(s) => s.write(buf),
            ClientStream::Tcp(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            ClientStream::Unix(s) => s.flush(),
            ClientStream::Tcp(s) => s.flush(),
        }
    }
}

/// A connected protocol client.
pub struct Connection {
    reader: BufReader<ClientStream>,
    writer: ClientStream,
}

/// The reassembled result of one streamed `run` request.
#[derive(Clone, Debug, PartialEq)]
pub struct RunOutcome {
    /// The full run, byte-identical (via `emit::to_json`) to running the
    /// same scenario/scale/seed/shard locally.
    pub run: SweepRun,
    /// Shared plan-cache hits the server attributed to this request.
    pub plan_cache_hits_delta: u64,
    /// Shared plan-cache misses the server attributed to this request.
    pub plan_cache_misses_delta: u64,
    /// Pool tasks the server executed while serving this request.
    pub pool_tasks_delta: u64,
    /// Pool steals the server observed while serving this request.
    pub pool_steals_delta: u64,
    /// Worker parks the server observed while serving this request.
    pub pool_parks_delta: u64,
}

/// Connects to a serving endpoint.
pub fn connect(endpoint: &Endpoint) -> Result<Connection, String> {
    let stream = match endpoint {
        Endpoint::Unix(path) => UnixStream::connect(path).map(ClientStream::Unix),
        Endpoint::Tcp(addr) => TcpStream::connect(addr).map(ClientStream::Tcp),
    }
    .map_err(|e| format!("cannot connect to {endpoint}: {e}"))?;
    let reader = stream
        .try_clone()
        .map_err(|e| format!("cannot clone stream: {e}"))?;
    Ok(Connection {
        reader: BufReader::new(reader),
        writer: stream,
    })
}

/// [`connect`], retrying until `timeout` elapses — for drivers (tests, CI)
/// that race a freshly booted server.
pub fn connect_with_retry(endpoint: &Endpoint, timeout: Duration) -> Result<Connection, String> {
    let deadline = Instant::now() + timeout;
    loop {
        match connect(endpoint) {
            Ok(connection) => return Ok(connection),
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(format!("{e} (gave up after {timeout:?})"));
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

impl Connection {
    /// Sends one request line.
    pub fn send(&mut self, request: &Request) -> Result<(), String> {
        self.writer
            .write_all(request.to_json().as_bytes())
            .and_then(|_| self.writer.write_all(b"\n"))
            .and_then(|_| self.writer.flush())
            .map_err(|e| format!("cannot send request: {e}"))
    }

    /// Reads the next response line (`None` on server EOF).
    pub fn recv(&mut self) -> Result<Option<Response>, String> {
        let mut line = String::new();
        loop {
            line.clear();
            match self.reader.read_line(&mut line) {
                Ok(0) => return Ok(None),
                Ok(_) if line.trim().is_empty() => {}
                Ok(_) => return Response::from_json(line.trim()).map(Some),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(format!("cannot read response: {e}")),
            }
        }
    }

    fn expect(&mut self, what: &str) -> Result<Response, String> {
        match self.recv()? {
            Some(Response::Error { message }) => Err(format!("server error: {message}")),
            Some(response) => Ok(response),
            None => Err(format!("connection closed while waiting for {what}")),
        }
    }

    /// Lists the server's scenarios as `(name, description, summary)`.
    pub fn list_scenarios(&mut self) -> Result<Vec<(String, String, String)>, String> {
        self.send(&Request::ListScenarios)?;
        let mut scenarios = Vec::new();
        loop {
            match self.expect("scenario list")? {
                Response::Scenario {
                    name,
                    description,
                    summary,
                } => scenarios.push((name, description, summary)),
                Response::ScenariosDone { count } => {
                    if count != scenarios.len() as u64 {
                        return Err(format!(
                            "scenario list truncated: got {} of {count}",
                            scenarios.len()
                        ));
                    }
                    return Ok(scenarios);
                }
                other => return Err(format!("unexpected response: {}", other.to_json())),
            }
        }
    }

    /// Runs a scenario (or one shard of it) on the server, invoking
    /// `on_record` as each streamed record arrives, and reassembles the
    /// stream into a [`RunOutcome`] whose `run` exports byte-identically
    /// to a local run of the same parameters.
    pub fn run(
        &mut self,
        scenario: &str,
        scale: Scale,
        seed: u64,
        shard: Option<ShardSpec>,
        mut on_record: impl FnMut(&RunRecord),
    ) -> Result<RunOutcome, String> {
        self.send(&Request::Run {
            scenario: scenario.to_string(),
            scale,
            seed,
            shard,
        })?;
        let (run_scenario, description, workload, scale_name, master_seed, points) =
            match self.expect("run-start")? {
                Response::RunStart {
                    scenario,
                    description,
                    workload,
                    scale,
                    master_seed,
                    points,
                } => (scenario, description, workload, scale, master_seed, points),
                other => return Err(format!("expected run-start, got: {}", other.to_json())),
            };
        let mut records: Vec<RunRecord> = Vec::with_capacity(points as usize);
        loop {
            match self.expect("record stream")? {
                Response::Record { record } => {
                    on_record(&record);
                    records.push(record);
                }
                Response::RunEnd {
                    records: expected,
                    plan_cache_hits_delta,
                    plan_cache_misses_delta,
                    pool_tasks_delta,
                    pool_steals_delta,
                    pool_parks_delta,
                } => {
                    if expected != records.len() as u64 {
                        return Err(format!(
                            "record stream truncated: got {} of {expected}",
                            records.len()
                        ));
                    }
                    return Ok(RunOutcome {
                        run: SweepRun {
                            scenario: run_scenario,
                            description,
                            workload,
                            scale: scale_name,
                            master_seed,
                            records,
                        },
                        plan_cache_hits_delta,
                        plan_cache_misses_delta,
                        pool_tasks_delta,
                        pool_steals_delta,
                        pool_parks_delta,
                    });
                }
                other => return Err(format!("unexpected response: {}", other.to_json())),
            }
        }
    }

    /// Fetches the server's status counters.
    pub fn status(&mut self) -> Result<StatusReport, String> {
        self.send(&Request::Status)?;
        match self.expect("status")? {
            Response::Status(report) => Ok(report),
            other => Err(format!("expected status, got: {}", other.to_json())),
        }
    }

    /// Asks the server to shut down (acknowledged before it exits).
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.send(&Request::Shutdown)?;
        match self.expect("shutdown acknowledgement")? {
            Response::ShuttingDown => Ok(()),
            other => Err(format!("expected shutting-down, got: {}", other.to_json())),
        }
    }
}

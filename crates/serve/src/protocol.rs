//! The line-delimited JSON wire protocol of the resident sweep service.
//!
//! Every message is one JSON object on one line (`\n`-terminated).
//! Requests carry a `cmd` field, responses a `type` field:
//!
//! ```text
//! -> {"cmd":"list-scenarios"}
//! <- {"type":"scenario","name":...,"description":...,"summary":...}   (xN)
//! <- {"type":"scenarios-done","count":N}
//!
//! -> {"cmd":"run","scenario":"smoke","scale":"smoke","seed":7,"shard":"1/2"}
//! <- {"type":"run-start","scenario":...,"description":...,"workload":...,
//!     "scale":...,"master_seed":...,"points":N}
//! <- {"type":"record","record":{...}}                                 (xN, streamed)
//! <- {"type":"run-end","records":N,"plan_cache_hits_delta":H,
//!     "plan_cache_misses_delta":M,"pool_tasks_delta":T,
//!     "pool_steals_delta":S,"pool_parks_delta":P}
//!
//! -> {"cmd":"status"}
//! <- {"type":"status",...}
//!
//! -> {"cmd":"shutdown"}
//! <- {"type":"shutting-down"}
//! ```
//!
//! `scale`, `seed`, and `shard` are optional on `run` (defaulting to
//! `standard`, the sweep engine's default seed, and the full 1/1 shard).
//! Record lines embed the exact [`record_json`] byte form, so a client
//! that reassembles the stream re-exports documents byte-identical to a
//! local run. Errors come back as `{"type":"error","message":...}` and
//! never tear down the connection.

use crate::shard::ShardSpec;
use rlnc_par::Scale;
use rlnc_sweep::emit::{json, record_from_json, record_json};
use rlnc_sweep::{RunRecord, DEFAULT_SWEEP_SEED};

/// A client request — one line on the wire.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// List the registry's scenarios.
    ListScenarios,
    /// Run a scenario (or one shard of it), streaming records back.
    Run {
        /// Registry scenario name.
        scenario: String,
        /// Scale to run at.
        scale: Scale,
        /// Master seed of the run.
        seed: u64,
        /// Optional shard restriction (defaults to the full grid).
        shard: Option<ShardSpec>,
    },
    /// Report server counters and cache health.
    Status,
    /// Ask the server to stop accepting connections and exit.
    Shutdown,
}

impl Request {
    /// Serializes the request as one protocol line (no trailing newline).
    pub fn to_json(&self) -> String {
        match self {
            Request::ListScenarios => "{\"cmd\":\"list-scenarios\"}".into(),
            Request::Run {
                scenario,
                scale,
                seed,
                shard,
            } => {
                let mut out = format!(
                    "{{\"cmd\":\"run\",\"scenario\":\"{}\",\"scale\":\"{}\",\"seed\":{}",
                    json::escape(scenario),
                    scale.name(),
                    seed
                );
                if let Some(shard) = shard {
                    out.push_str(&format!(",\"shard\":\"{shard}\""));
                }
                out.push('}');
                out
            }
            Request::Status => "{\"cmd\":\"status\"}".into(),
            Request::Shutdown => "{\"cmd\":\"shutdown\"}".into(),
        }
    }

    /// Parses one request line.
    pub fn from_json(line: &str) -> Result<Request, String> {
        let value = json::parse(line)?;
        let obj = value.as_object("request")?;
        let cmd = json::get(obj, "cmd")?.as_string("cmd")?;
        match cmd.as_str() {
            "list-scenarios" => Ok(Request::ListScenarios),
            "status" => Ok(Request::Status),
            "shutdown" => Ok(Request::Shutdown),
            "run" => {
                let scenario = json::get(obj, "scenario")
                    .map_err(|_| "run: missing 'scenario'".to_string())?
                    .as_string("scenario")?;
                let scale = match json::get(obj, "scale") {
                    Ok(v) => v
                        .as_string("scale")?
                        .parse::<Scale>()
                        .map_err(|e| format!("scale: {e}"))?,
                    Err(_) => Scale::Standard,
                };
                let seed = match json::get(obj, "seed") {
                    Ok(v) => v.as_u64("seed")?,
                    Err(_) => DEFAULT_SWEEP_SEED,
                };
                let shard = match json::get(obj, "shard") {
                    Ok(v) => Some(ShardSpec::parse(&v.as_string("shard")?)?),
                    Err(_) => None,
                };
                Ok(Request::Run {
                    scenario,
                    scale,
                    seed,
                    shard,
                })
            }
            other => Err(format!("unknown cmd '{other}'")),
        }
    }
}

/// The server-side counters reported by a `status` response.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatusReport {
    /// Requests dispatched since the server started.
    pub requests: u64,
    /// Record lines streamed across all `run` requests.
    pub records_streamed: u64,
    /// Requests that produced an `error` response.
    pub errors: u64,
    /// Connections currently being served.
    pub active_connections: u64,
    /// Scenarios in the server's registry.
    pub scenarios: u64,
    /// Cumulative shared plan-cache hits (process-wide).
    pub plan_cache_hits: u64,
    /// Cumulative shared plan-cache misses.
    pub plan_cache_misses: u64,
    /// Plans currently resident in the shared cache.
    pub plan_cache_plans: u64,
}

/// A server response — one line on the wire (several per request when
/// streaming).
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// One scenario of a `list-scenarios` reply.
    Scenario {
        /// Scenario name.
        name: String,
        /// Human description.
        description: String,
        /// Workload/axis summary line.
        summary: String,
    },
    /// Terminator of a `list-scenarios` reply.
    ScenariosDone {
        /// Number of scenario lines sent.
        count: u64,
    },
    /// Header of a `run` reply: the run metadata a client needs to
    /// reassemble a byte-identical export from the streamed records.
    RunStart {
        /// Scenario name.
        scenario: String,
        /// Scenario description.
        description: String,
        /// Workload name.
        workload: String,
        /// Scale name.
        scale: String,
        /// Master seed of the run.
        master_seed: u64,
        /// Number of record lines that will follow.
        points: u64,
    },
    /// One streamed record (sent as soon as its grid point completes).
    Record {
        /// The completed record.
        record: RunRecord,
    },
    /// Terminator of a `run` reply, with per-request cache and
    /// work-stealing-pool deltas.
    RunEnd {
        /// Records streamed for this request.
        records: u64,
        /// Shared plan-cache hits attributed to this request.
        plan_cache_hits_delta: u64,
        /// Shared plan-cache misses attributed to this request.
        plan_cache_misses_delta: u64,
        /// Pool tasks executed while serving this request.
        pool_tasks_delta: u64,
        /// Pool steals observed while serving this request.
        pool_steals_delta: u64,
        /// Worker parks observed while serving this request.
        pool_parks_delta: u64,
    },
    /// Reply to `status`.
    Status(StatusReport),
    /// Acknowledgement of `shutdown` (the server exits after sending it).
    ShuttingDown,
    /// A request-level failure; the connection stays usable.
    Error {
        /// One-line description of what went wrong.
        message: String,
    },
}

impl Response {
    /// Serializes the response as one protocol line (no trailing newline).
    pub fn to_json(&self) -> String {
        match self {
            Response::Scenario {
                name,
                description,
                summary,
            } => format!(
                "{{\"type\":\"scenario\",\"name\":\"{}\",\"description\":\"{}\",\"summary\":\"{}\"}}",
                json::escape(name),
                json::escape(description),
                json::escape(summary)
            ),
            Response::ScenariosDone { count } => {
                format!("{{\"type\":\"scenarios-done\",\"count\":{count}}}")
            }
            Response::RunStart {
                scenario,
                description,
                workload,
                scale,
                master_seed,
                points,
            } => format!(
                concat!(
                    "{{\"type\":\"run-start\",\"scenario\":\"{}\",\"description\":\"{}\",",
                    "\"workload\":\"{}\",\"scale\":\"{}\",\"master_seed\":{},\"points\":{}}}"
                ),
                json::escape(scenario),
                json::escape(description),
                json::escape(workload),
                json::escape(scale),
                master_seed,
                points
            ),
            Response::Record { record } => {
                format!("{{\"type\":\"record\",\"record\":{}}}", record_json(record))
            }
            Response::RunEnd {
                records,
                plan_cache_hits_delta,
                plan_cache_misses_delta,
                pool_tasks_delta,
                pool_steals_delta,
                pool_parks_delta,
            } => format!(
                concat!(
                    "{{\"type\":\"run-end\",\"records\":{},\"plan_cache_hits_delta\":{},",
                    "\"plan_cache_misses_delta\":{},\"pool_tasks_delta\":{},",
                    "\"pool_steals_delta\":{},\"pool_parks_delta\":{}}}"
                ),
                records,
                plan_cache_hits_delta,
                plan_cache_misses_delta,
                pool_tasks_delta,
                pool_steals_delta,
                pool_parks_delta
            ),
            Response::Status(s) => format!(
                concat!(
                    "{{\"type\":\"status\",\"requests\":{},\"records_streamed\":{},",
                    "\"errors\":{},\"active_connections\":{},\"scenarios\":{},",
                    "\"plan_cache_hits\":{},\"plan_cache_misses\":{},\"plan_cache_plans\":{}}}"
                ),
                s.requests,
                s.records_streamed,
                s.errors,
                s.active_connections,
                s.scenarios,
                s.plan_cache_hits,
                s.plan_cache_misses,
                s.plan_cache_plans
            ),
            Response::ShuttingDown => "{\"type\":\"shutting-down\"}".into(),
            Response::Error { message } => {
                format!("{{\"type\":\"error\",\"message\":\"{}\"}}", json::escape(message))
            }
        }
    }

    /// Parses one response line.
    pub fn from_json(line: &str) -> Result<Response, String> {
        let value = json::parse(line)?;
        let obj = value.as_object("response")?;
        let kind = json::get(obj, "type")?.as_string("type")?;
        match kind.as_str() {
            "scenario" => Ok(Response::Scenario {
                name: json::get(obj, "name")?.as_string("name")?,
                description: json::get(obj, "description")?.as_string("description")?,
                summary: json::get(obj, "summary")?.as_string("summary")?,
            }),
            "scenarios-done" => Ok(Response::ScenariosDone {
                count: json::get(obj, "count")?.as_u64("count")?,
            }),
            "run-start" => Ok(Response::RunStart {
                scenario: json::get(obj, "scenario")?.as_string("scenario")?,
                description: json::get(obj, "description")?.as_string("description")?,
                workload: json::get(obj, "workload")?.as_string("workload")?,
                scale: json::get(obj, "scale")?.as_string("scale")?,
                master_seed: json::get(obj, "master_seed")?.as_u64("master_seed")?,
                points: json::get(obj, "points")?.as_u64("points")?,
            }),
            "record" => Ok(Response::Record {
                record: record_from_json(json::get(obj, "record")?, "record")?,
            }),
            "run-end" => Ok(Response::RunEnd {
                records: json::get(obj, "records")?.as_u64("records")?,
                plan_cache_hits_delta: json::get(obj, "plan_cache_hits_delta")?
                    .as_u64("plan_cache_hits_delta")?,
                plan_cache_misses_delta: json::get(obj, "plan_cache_misses_delta")?
                    .as_u64("plan_cache_misses_delta")?,
                // Pool deltas predate no server we ship, but tolerate
                // their absence so older captures still parse.
                pool_tasks_delta: json::get(obj, "pool_tasks_delta")
                    .and_then(|v| v.as_u64("pool_tasks_delta"))
                    .unwrap_or(0),
                pool_steals_delta: json::get(obj, "pool_steals_delta")
                    .and_then(|v| v.as_u64("pool_steals_delta"))
                    .unwrap_or(0),
                pool_parks_delta: json::get(obj, "pool_parks_delta")
                    .and_then(|v| v.as_u64("pool_parks_delta"))
                    .unwrap_or(0),
            }),
            "status" => Ok(Response::Status(StatusReport {
                requests: json::get(obj, "requests")?.as_u64("requests")?,
                records_streamed: json::get(obj, "records_streamed")?
                    .as_u64("records_streamed")?,
                errors: json::get(obj, "errors")?.as_u64("errors")?,
                active_connections: json::get(obj, "active_connections")?
                    .as_u64("active_connections")?,
                scenarios: json::get(obj, "scenarios")?.as_u64("scenarios")?,
                plan_cache_hits: json::get(obj, "plan_cache_hits")?.as_u64("plan_cache_hits")?,
                plan_cache_misses: json::get(obj, "plan_cache_misses")?
                    .as_u64("plan_cache_misses")?,
                plan_cache_plans: json::get(obj, "plan_cache_plans")?
                    .as_u64("plan_cache_plans")?,
            })),
            "shutting-down" => Ok(Response::ShuttingDown),
            "error" => Ok(Response::Error {
                message: json::get(obj, "message")?.as_string("message")?,
            }),
            other => Err(format!("unknown response type '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_record() -> RunRecord {
        RunRecord {
            scenario: "smoke".into(),
            point: 3,
            family: "cycle".into(),
            n: 16,
            id_scheme: "consecutive".into(),
            workload: "slack-coloring".into(),
            param_a: 1,
            param_b: 2,
            trials: 64,
            seed: u64::MAX,
            successes: 60,
            p_hat: 0.9375,
            lower: 0.85,
            upper: 0.98,
            mean_value: 0.25,
        }
    }

    #[test]
    fn requests_round_trip() {
        let requests = [
            Request::ListScenarios,
            Request::Status,
            Request::Shutdown,
            Request::Run {
                scenario: "fault-matrix".into(),
                scale: Scale::Smoke,
                seed: 42,
                shard: Some(ShardSpec::new(2, 3).unwrap()),
            },
            Request::Run {
                scenario: "smoke".into(),
                scale: Scale::Standard,
                seed: DEFAULT_SWEEP_SEED,
                shard: None,
            },
        ];
        for req in requests {
            let line = req.to_json();
            assert_eq!(Request::from_json(&line).unwrap(), req, "line: {line}");
        }
    }

    #[test]
    fn run_request_defaults_scale_seed_and_shard() {
        let req = Request::from_json("{\"cmd\":\"run\",\"scenario\":\"smoke\"}").unwrap();
        assert_eq!(
            req,
            Request::Run {
                scenario: "smoke".into(),
                scale: Scale::Standard,
                seed: DEFAULT_SWEEP_SEED,
                shard: None,
            }
        );
    }

    #[test]
    fn malformed_requests_are_rejected_with_one_line_errors() {
        assert!(Request::from_json("not json").is_err());
        assert!(Request::from_json("{\"cmd\":\"warp\"}").is_err());
        assert!(Request::from_json("{\"cmd\":\"run\"}").unwrap_err().contains("scenario"));
        let err = Request::from_json("{\"cmd\":\"run\",\"scenario\":\"s\",\"shard\":\"0/4\"}")
            .unwrap_err();
        assert!(err.contains("1-based"), "unexpected error: {err}");
    }

    #[test]
    fn responses_round_trip() {
        let responses = [
            Response::Scenario {
                name: "smoke".into(),
                description: "tiny \"quoted\" grid".into(),
                summary: "slack-coloring over cycles".into(),
            },
            Response::ScenariosDone { count: 10 },
            Response::RunStart {
                scenario: "smoke".into(),
                description: "d".into(),
                workload: "slack-coloring".into(),
                scale: "smoke".into(),
                master_seed: u64::MAX,
                points: 8,
            },
            Response::Record {
                record: demo_record(),
            },
            Response::RunEnd {
                records: 8,
                plan_cache_hits_delta: 5,
                plan_cache_misses_delta: 3,
                pool_tasks_delta: 21,
                pool_steals_delta: 4,
                pool_parks_delta: 2,
            },
            Response::Status(StatusReport {
                requests: 4,
                records_streamed: 32,
                errors: 1,
                active_connections: 2,
                scenarios: 10,
                plan_cache_hits: 12,
                plan_cache_misses: 6,
                plan_cache_plans: 6,
            }),
            Response::ShuttingDown,
            Response::Error {
                message: "unknown scenario: warp".into(),
            },
        ];
        for resp in responses {
            let line = resp.to_json();
            assert!(!line.contains('\n'), "one line per message: {line}");
            assert_eq!(Response::from_json(&line).unwrap(), resp, "line: {line}");
        }
    }

    #[test]
    fn run_end_tolerates_missing_pool_deltas() {
        let legacy = "{\"type\":\"run-end\",\"records\":2,\"plan_cache_hits_delta\":1,\
                      \"plan_cache_misses_delta\":0}";
        assert_eq!(
            Response::from_json(legacy).unwrap(),
            Response::RunEnd {
                records: 2,
                plan_cache_hits_delta: 1,
                plan_cache_misses_delta: 0,
                pool_tasks_delta: 0,
                pool_steals_delta: 0,
                pool_parks_delta: 0,
            }
        );
    }

    #[test]
    fn record_lines_embed_the_exact_export_byte_form() {
        let record = demo_record();
        let line = Response::Record {
            record: record.clone(),
        }
        .to_json();
        assert!(line.contains(&record_json(&record)));
    }
}

//! End-to-end tests of the resident sweep service: byte-identical
//! streamed runs, shard reassembly, warm-cache reuse, and concurrent
//! clients — over both Unix sockets and TCP.

use rlnc_par::Scale;
use rlnc_serve::{connect_with_retry, Endpoint, ShardSpec, SweepServer};
use rlnc_sweep::{emit, Registry, SweepExecutor};
use std::time::Duration;

const CONNECT_TIMEOUT: Duration = Duration::from_secs(10);

fn start(endpoint: Endpoint) -> (Endpoint, std::thread::JoinHandle<Result<(), String>>) {
    let bound = SweepServer::new().bind(&endpoint).expect("bind endpoint");
    let actual = bound.endpoint().clone();
    let handle = std::thread::spawn(move || bound.serve());
    (actual, handle)
}

fn temp_socket(tag: &str) -> Endpoint {
    Endpoint::Unix(
        std::env::temp_dir().join(format!("rlnc-serve-{tag}-{}.sock", std::process::id())),
    )
}

#[test]
fn streamed_run_over_unix_socket_matches_local_run_byte_for_byte() {
    let (endpoint, handle) = start(temp_socket("roundtrip"));
    let mut client = connect_with_retry(&endpoint, CONNECT_TIMEOUT).expect("connect");

    let mut streamed = 0usize;
    let outcome = client
        .run("smoke", Scale::Smoke, 7, None, |_| streamed += 1)
        .expect("streamed run");

    let spec = Registry::builtin().get("smoke").cloned().expect("smoke scenario");
    let local = SweepExecutor::new(Scale::Smoke).with_seed(7).run(&spec);
    assert_eq!(streamed, local.records.len(), "every record was streamed");
    assert_eq!(outcome.run, local);
    assert_eq!(
        emit::to_json(&outcome.run),
        emit::to_json(&local),
        "the reassembled stream exports byte-identically to a local run"
    );

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("serve exits cleanly");
}

#[test]
fn sharded_requests_merge_to_the_full_run_and_repeat_requests_hit_warm_plans() {
    let (endpoint, handle) = start(Endpoint::Tcp("127.0.0.1:0".into()));
    let mut client = connect_with_retry(&endpoint, CONNECT_TIMEOUT).expect("connect");

    let spec = Registry::builtin().get("smoke").cloned().expect("smoke scenario");
    let local = SweepExecutor::new(Scale::Smoke).with_seed(5).run(&spec);

    let count = 3u64;
    let shards: Vec<_> = (1..=count)
        .map(|i| {
            let shard = ShardSpec::new(i, count).unwrap();
            client
                .run("smoke", Scale::Smoke, 5, Some(shard), |_| {})
                .expect("shard run")
                .run
        })
        .collect();
    let merged = emit::merge_runs(&shards).expect("merge shards");
    assert_eq!(emit::to_json(&merged), emit::to_json(&local));

    // The first requests planned every point; an identical repeat request
    // must be answered from the warm (process-global) plan cache.
    let repeat = client
        .run("smoke", Scale::Smoke, 5, None, |_| {})
        .expect("repeat run");
    assert_eq!(repeat.run, local);
    assert!(
        repeat.plan_cache_hits_delta > 0,
        "repeat request reuses warm plans (hits delta = {})",
        repeat.plan_cache_hits_delta
    );

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("serve exits cleanly");
}

#[test]
fn concurrent_clients_are_served_and_counted() {
    let (endpoint, handle) = start(temp_socket("concurrent"));

    // Warm the cache with a sequential request first so both concurrent
    // repeats are deterministic cache consumers.
    let mut warmup = connect_with_retry(&endpoint, CONNECT_TIMEOUT).expect("connect");
    let local = {
        let spec = Registry::builtin().get("smoke").cloned().expect("smoke scenario");
        SweepExecutor::new(Scale::Smoke).with_seed(11).run(&spec)
    };
    let first = warmup.run("smoke", Scale::Smoke, 11, None, |_| {}).expect("warmup run");
    assert_eq!(first.run, local);

    let results: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let endpoint = endpoint.clone();
                scope.spawn(move || {
                    let mut client =
                        connect_with_retry(&endpoint, CONNECT_TIMEOUT).expect("connect");
                    client.run("smoke", Scale::Smoke, 11, None, |_| {}).expect("run")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    for outcome in &results {
        assert_eq!(outcome.run, local, "concurrent requests stream correct records");
        assert!(
            outcome.plan_cache_hits_delta > 0,
            "warmed requests hit the shared cache"
        );
    }

    let status = warmup.status().expect("status");
    assert!(status.requests >= 3, "requests counted: {status:?}");
    assert!(
        status.records_streamed >= 3 * local.records.len() as u64,
        "streamed records counted: {status:?}"
    );
    assert_eq!(status.scenarios, Registry::builtin().names().len() as u64);
    assert!(status.plan_cache_hits > 0);

    warmup.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("serve exits cleanly");
}

#[test]
fn scenario_listing_and_request_errors_keep_the_connection_usable() {
    let (endpoint, handle) = start(temp_socket("errors"));
    let mut client = connect_with_retry(&endpoint, CONNECT_TIMEOUT).expect("connect");

    let listed = client.list_scenarios().expect("list scenarios");
    let registry = Registry::builtin();
    assert_eq!(
        listed.iter().map(|(name, _, _)| name.as_str()).collect::<Vec<_>>(),
        registry.names(),
        "listing matches the built-in registry"
    );

    // An unknown scenario is a request-level error, not a dropped
    // connection: the same client keeps working afterwards.
    let err = client
        .run("no-such-scenario", Scale::Smoke, 1, None, |_| {})
        .expect_err("unknown scenario errors");
    assert!(err.contains("unknown scenario"), "unexpected error: {err}");
    let still_listed = client.list_scenarios().expect("connection survives the error");
    assert_eq!(still_listed.len(), listed.len());

    let status = client.status().expect("status");
    assert!(status.errors >= 1, "errors counted: {status:?}");

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("serve exits cleanly");
}

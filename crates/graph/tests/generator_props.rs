//! Property tests for the graph generators the sweep scenarios rely on:
//! random `d`-regular graphs and 2-D tori must honor their degree bounds,
//! stay connected, and have the exact node/edge counts their definitions
//! promise, across seeds and sizes.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use rlnc_graph::generators::{circulant, prism, random_regular, torus};
use rlnc_graph::is_connected;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_regular_is_exactly_d_regular_and_connected(
        seed in 0u64..1_000_000,
        n_raw in 8u64..64,
        d in 2u64..5,
    ) {
        // Keep n*d even (a d-regular graph otherwise cannot exist).
        let n = if (n_raw * d) % 2 == 1 { n_raw + 1 } else { n_raw } as usize;
        let d = d as usize;
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = random_regular(n, d, &mut rng);
        prop_assert_eq!(g.node_count(), n);
        prop_assert_eq!(g.edge_count(), n * d / 2);
        prop_assert!(g.nodes().all(|v| g.degree(v) == d));
        prop_assert!(is_connected(&g));
        prop_assert!(g.validate().is_ok(), "invalid CSR: {:?}", g.validate());
    }

    #[test]
    fn random_regular_is_reproducible_per_seed(seed in 0u64..1_000_000, n in 6u64..40) {
        let n = (n as usize) & !1; // even so n*3 is even
        let a = random_regular(n.max(6), 3, &mut SmallRng::seed_from_u64(seed));
        let b = random_regular(n.max(6), 3, &mut SmallRng::seed_from_u64(seed));
        let ea: Vec<_> = a.edges().collect();
        let eb: Vec<_> = b.edges().collect();
        prop_assert_eq!(ea, eb);
    }

    #[test]
    fn torus_is_4_regular_with_exact_counts(rows in 3u64..16, cols in 3u64..16) {
        let (rows, cols) = (rows as usize, cols as usize);
        let g = torus(rows, cols);
        prop_assert_eq!(g.node_count(), rows * cols);
        // Every node contributes exactly 2 wrap-around-inclusive edges.
        prop_assert_eq!(g.edge_count(), 2 * rows * cols);
        prop_assert!(g.nodes().all(|v| g.degree(v) == 4));
        prop_assert!(is_connected(&g));
        prop_assert!(g.validate().is_ok(), "invalid CSR: {:?}", g.validate());
    }

    #[test]
    fn circulant_squared_cycle_counts(n in 5u64..200) {
        let n = n as usize;
        let g = circulant(n, &[1, 2]);
        prop_assert_eq!(g.node_count(), n);
        prop_assert_eq!(g.edge_count(), 2 * n);
        prop_assert!(g.nodes().all(|v| g.degree(v) == 4));
        prop_assert!(is_connected(&g));
    }

    #[test]
    fn prism_counts(n in 3u64..100) {
        let n = n as usize;
        let g = prism(n);
        prop_assert_eq!(g.node_count(), 2 * n);
        prop_assert_eq!(g.edge_count(), 3 * n);
        prop_assert!(g.nodes().all(|v| g.degree(v) == 3));
        prop_assert!(is_connected(&g));
    }
}

//! Arena extraction of *all* radius-`t` balls of a graph in one pass.
//!
//! [`Ball::extract`](crate::ball::Ball::extract) allocates a fresh
//! hash map, frontier vector, and induced [`Graph`] per call. That is fine
//! for extracting one ball, but the Monte-Carlo hot paths of this workspace
//! need the balls of *every* node of the same `(graph, radius)` pair —
//! often millions of times across trials. [`BallArena`] amortizes that
//! work: a single [`BfsScratch`] (stamp-based visited marks, no hashing,
//! no per-node clearing) drives one bounded BFS per node, and the results
//! land in flat member/distance/offset arrays plus one concatenated CSR
//! holding every ball's induced adjacency. Nothing is allocated per ball
//! beyond the shared arrays' amortized growth.
//!
//! The arena is **bit-identical** to the per-ball path:
//! [`BallArena::ball`] materializes exactly the [`Ball`] that
//! [`Ball::extract`](crate::ball::Ball::extract) would return (same member
//! order, same distances, same induced CSR), which is what lets the
//! execution engine built on top of it (`rlnc-engine`) guarantee
//! bit-reproducible results.

use crate::ball::Ball;
use crate::csr::{Graph, NodeId};
use rlnc_obs::{LazyCounter, LazyGauge, LazyHistogram, LazySpan, Section, POW2_BUCKETS};

// Arena-level observability (see ARCHITECTURE.md "Observability"). All of
// these are functions of (graph, radius) alone — never of thread schedule
// — so they live in the deterministic trace section; the extraction span
// is wall-clock and lands in the timing section.
static OBS_EXTRACTIONS: LazyCounter =
    LazyCounter::new("graph.arena.extractions", Section::Deterministic);
static OBS_BALLS: LazyCounter = LazyCounter::new("graph.arena.balls", Section::Deterministic);
static OBS_MEMBERS: LazyCounter = LazyCounter::new("graph.arena.members", Section::Deterministic);
static OBS_CSR_EDGES: LazyCounter =
    LazyCounter::new("graph.arena.csr_edges", Section::Deterministic);
static OBS_WORKING_SET: LazyGauge =
    LazyGauge::new("graph.arena.working_set_bytes", Section::Deterministic);
static OBS_LANE_PACKS: LazyCounter =
    LazyCounter::new("graph.arena.lane_packs", Section::Deterministic);
static OBS_LANE_KEYS: LazyCounter =
    LazyCounter::new("graph.arena.lane_keys", Section::Deterministic);
static OBS_BALL_MEMBERS: LazyHistogram = LazyHistogram::new(
    "graph.arena.ball_members",
    Section::Deterministic,
    &POW2_BUCKETS,
);
static OBS_BALL_EDGES: LazyHistogram = LazyHistogram::new(
    "graph.arena.ball_edges",
    Section::Deterministic,
    &POW2_BUCKETS,
);
static OBS_EXTRACT_SPAN: LazySpan = LazySpan::new("graph.arena.extract_all");

/// Reusable scratch state for bounded BFS over one host graph.
///
/// Visited marks are generation stamps, so reusing the scratch across many
/// sources costs no clearing: bumping the generation invalidates every mark
/// at once. The same stamp array doubles as the host→local index map during
/// ball extraction.
#[derive(Debug, Clone)]
pub struct BfsScratch {
    /// Generation stamp per host node; a node is "seen" iff its stamp
    /// equals the current generation.
    stamp: Vec<u64>,
    /// Local index of a seen host node within the current ball.
    local: Vec<u32>,
    /// Distance of a seen host node from the current source.
    dist: Vec<u32>,
    /// Current generation.
    generation: u64,
    /// BFS queue of host nodes, consumed by index (`head`).
    queue: Vec<NodeId>,
}

impl BfsScratch {
    /// Creates scratch state for graphs of up to `n` nodes.
    pub fn new(n: usize) -> Self {
        BfsScratch {
            stamp: vec![0; n],
            local: vec![0; n],
            dist: vec![0; n],
            generation: 0,
            queue: Vec::new(),
        }
    }

    /// Runs a BFS from `source` truncated at distance `radius`, pushing the
    /// discovered `(node, distance)` pairs into `out` (cleared first) in
    /// discovery order. Equivalent to
    /// [`bfs_distances_bounded`](crate::traversal::bfs_distances_bounded)
    /// but allocation-free after warm-up.
    pub fn bounded_bfs(&mut self, graph: &Graph, source: NodeId, radius: u32, out: &mut Vec<(NodeId, u32)>) {
        assert!(graph.node_count() <= self.stamp.len(), "scratch too small for graph");
        self.generation += 1;
        let generation = self.generation;
        out.clear();
        self.queue.clear();
        self.stamp[source.index()] = generation;
        self.dist[source.index()] = 0;
        self.queue.push(source);
        out.push((source, 0));
        let mut head = 0usize;
        while head < self.queue.len() {
            let u = self.queue[head];
            head += 1;
            let du = self.dist[u.index()];
            if du == radius {
                continue;
            }
            for w in graph.neighbor_ids(u) {
                if self.stamp[w.index()] != generation {
                    self.stamp[w.index()] = generation;
                    self.dist[w.index()] = du + 1;
                    out.push((w, du + 1));
                    self.queue.push(w);
                }
            }
        }
    }
}

/// Every node's radius-`t` ball, extracted once into flat shared arrays.
///
/// For ball `i` (the ball centered at host node `i`):
/// * members and distances live in
///   `members[ball_offsets[i]..ball_offsets[i+1]]` (sorted by
///   `(distance, host index)`, center first — the canonical
///   [`Ball`] order);
/// * its induced adjacency is the CSR pair
///   `csr_offsets[ball_offsets[i] + i ..= ball_offsets[i+1] + i]` /
///   `csr_neighbors[edge_offsets[i]..edge_offsets[i+1]]`, in local indices
///   relative to the ball, with edges between two radius-`t` nodes removed
///   per the paper's ball definition.
#[derive(Debug, Clone)]
pub struct BallArena {
    radius: u32,
    ball_offsets: Vec<usize>,
    members: Vec<NodeId>,
    distances: Vec<u32>,
    csr_offsets: Vec<u32>,
    csr_neighbors: Vec<u32>,
    edge_offsets: Vec<usize>,
}

impl BallArena {
    /// Extracts the radius-`t` ball of every node of `graph` with one
    /// shared scratch.
    pub fn extract_all(graph: &Graph, radius: u32) -> BallArena {
        let _span = OBS_EXTRACT_SPAN.start();
        let n = graph.node_count();
        let mut scratch = BfsScratch::new(n);
        let mut frontier: Vec<(NodeId, u32)> = Vec::new();
        // Per-ball local adjacency lists, reused across balls.
        let mut local_adjacency: Vec<Vec<u32>> = Vec::new();

        let mut arena = BallArena {
            radius,
            ball_offsets: Vec::with_capacity(n + 1),
            members: Vec::new(),
            distances: Vec::new(),
            csr_offsets: Vec::new(),
            csr_neighbors: Vec::new(),
            edge_offsets: Vec::with_capacity(n + 1),
        };
        arena.ball_offsets.push(0);
        arena.edge_offsets.push(0);

        for center in graph.nodes() {
            scratch.bounded_bfs(graph, center, radius, &mut frontier);
            // Canonical member order: (distance, host index), center first.
            frontier.sort_unstable_by_key(|&(v, d)| (d, v.0));
            let len = frontier.len();
            if local_adjacency.len() < len {
                local_adjacency.resize_with(len, Vec::new);
            }
            // The BFS stamps are still valid for this generation: record
            // each member's local index for the host→local translation.
            for (li, &(v, _)) in frontier.iter().enumerate() {
                scratch.local[v.index()] = li as u32;
            }
            for (li, &(v, dv)) in frontier.iter().enumerate() {
                arena.members.push(v);
                arena.distances.push(dv);
                let list = &mut local_adjacency[li];
                list.clear();
                for w in graph.neighbor_ids(v) {
                    if scratch.stamp[w.index()] != scratch.generation {
                        continue; // neighbor outside the ball
                    }
                    let dw = scratch.dist[w.index()];
                    // Exclude edges between two nodes at distance exactly t.
                    if dv == radius && dw == radius {
                        continue;
                    }
                    list.push(scratch.local[w.index()]);
                }
                list.sort_unstable();
            }
            let mut running = 0u32;
            arena.csr_offsets.push(0);
            for list in local_adjacency.iter().take(len) {
                running += list.len() as u32;
                arena.csr_offsets.push(running);
                arena.csr_neighbors.extend_from_slice(list);
            }
            arena.ball_offsets.push(arena.members.len());
            arena.edge_offsets.push(arena.csr_neighbors.len());
        }
        arena.record_obs();
        arena
    }

    /// Feeds the arena's cache-behavior proxies into the observability
    /// registry: one counter bump per extraction plus per-ball member/CSR
    /// size histograms. Near-free (one branch) when collection is off.
    fn record_obs(&self) {
        if !rlnc_obs::enabled() {
            return;
        }
        OBS_EXTRACTIONS.inc();
        OBS_BALLS.add(self.len() as u64);
        OBS_MEMBERS.add(self.total_members() as u64);
        OBS_CSR_EDGES.add(self.csr_neighbors.len() as u64);
        OBS_WORKING_SET.record_max(self.working_set_bytes());
        for i in 0..self.len() {
            OBS_BALL_MEMBERS.observe(self.ball_len(i) as u64);
            OBS_BALL_EDGES.observe((self.edge_offsets[i + 1] - self.edge_offsets[i]) as u64);
        }
    }

    /// Bytes held by the arena's flat arrays — the working set a kernel
    /// pass over every ball touches, and the cache-behavior proxy exported
    /// as `graph.arena.working_set_bytes` and in `bench-export` groups.
    pub fn working_set_bytes(&self) -> u64 {
        use std::mem::size_of;
        (self.ball_offsets.len() * size_of::<usize>()
            + self.members.len() * size_of::<NodeId>()
            + self.distances.len() * size_of::<u32>()
            + self.csr_offsets.len() * size_of::<u32>()
            + self.csr_neighbors.len() * size_of::<u32>()
            + self.edge_offsets.len() * size_of::<usize>()) as u64
    }

    /// The extraction radius.
    pub fn radius(&self) -> u32 {
        self.radius
    }

    /// Number of balls (= nodes of the host graph).
    pub fn len(&self) -> usize {
        self.ball_offsets.len() - 1
    }

    /// Returns `true` if the arena holds no balls (empty host graph).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total number of ball memberships across all balls — the per-execution
    /// work a simulator pass over the arena performs.
    pub fn total_members(&self) -> usize {
        self.members.len()
    }

    /// Number of nodes in ball `i`.
    pub fn ball_len(&self, i: usize) -> usize {
        self.ball_offsets[i + 1] - self.ball_offsets[i]
    }

    /// Members of ball `i`, as host-graph nodes in canonical order (center
    /// first).
    pub fn members(&self, i: usize) -> &[NodeId] {
        &self.members[self.ball_offsets[i]..self.ball_offsets[i + 1]]
    }

    /// Range of ball `i` within the flat member-parallel arrays — the
    /// `(offset, len)` a view needs to slice a [flat lane]
    /// (`BallArena::pack_flat_lane`) built over this arena.
    pub fn flat_range(&self, i: usize) -> std::ops::Range<usize> {
        self.ball_offsets[i]..self.ball_offsets[i + 1]
    }

    /// Packs one flat `u64` lane over every ball's members: entry `j` of
    /// the lane is `key_of(members[j])`, so ball `i`'s slice is the lane at
    /// [`BallArena::flat_range`]`(i)`. `key_of` is invoked **once per host
    /// node** (not once per membership); the per-node keys are then
    /// scattered through the member array, which is what turns N per-view
    /// packing passes into a single arena pass. Returns the lane and
    /// whether every node produced a key (`key_of` returning `None`
    /// anywhere leaves a zero placeholder and marks the lane invalid —
    /// callers must then take their byte-level fallback path).
    pub fn pack_flat_lane(
        &self,
        mut key_of: impl FnMut(NodeId) -> Option<u64>,
    ) -> (Vec<u64>, bool) {
        let n = self.len();
        let mut host_keys = vec![0u64; n];
        let mut valid = true;
        for (i, slot) in host_keys.iter_mut().enumerate() {
            match key_of(NodeId::from_index(i)) {
                Some(key) => *slot = key,
                None => valid = false,
            }
        }
        let lane: Vec<u64> = self.members.iter().map(|&w| host_keys[w.index()]).collect();
        if rlnc_obs::enabled() {
            OBS_LANE_PACKS.inc();
            OBS_LANE_KEYS.add(lane.len() as u64);
        }
        (lane, valid)
    }

    /// Records lane bytes resident *alongside* this arena into the
    /// `graph.arena.working_set_bytes` gauge — called once per extraction
    /// with the **total** bytes of every flat lane built over it, so the
    /// gauge counts each lane exactly once (never per view).
    pub fn record_resident_lanes(&self, lane_bytes: u64) {
        if !rlnc_obs::enabled() {
            return;
        }
        OBS_WORKING_SET.record_max(self.working_set_bytes() + lane_bytes);
    }

    /// Distances from the center for ball `i` (parallel to
    /// [`BallArena::members`]).
    pub fn distances(&self, i: usize) -> &[u32] {
        &self.distances[self.ball_offsets[i]..self.ball_offsets[i + 1]]
    }

    /// Materializes ball `i` as a standalone [`Ball`], bit-identical to
    /// `Ball::extract(graph, NodeId(i), radius)`.
    pub fn ball(&self, i: usize) -> Ball {
        let start = self.ball_offsets[i];
        let end = self.ball_offsets[i + 1];
        let offsets = self.csr_offsets[start + i..=end + i].to_vec();
        let neighbors = self.csr_neighbors[self.edge_offsets[i]..self.edge_offsets[i + 1]].to_vec();
        Ball {
            radius: self.radius,
            center: NodeId(0),
            members: self.members[start..end].to_vec(),
            distances: self.distances[start..end].to_vec(),
            graph: Graph::from_csr(offsets, neighbors),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ball::{all_balls, Ball};
    use crate::generators::{cycle, grid, prism, star, Family};
    use crate::traversal::bfs_distances_bounded;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn scratch_bfs_matches_allocating_bfs() {
        let g = grid(5, 7);
        let mut scratch = BfsScratch::new(g.node_count());
        let mut out = Vec::new();
        for v in g.nodes() {
            for radius in [0u32, 1, 2, 5] {
                scratch.bounded_bfs(&g, v, radius, &mut out);
                let mut ours: Vec<(NodeId, u32)> = out.clone();
                let mut reference = bfs_distances_bounded(&g, v, radius);
                ours.sort_unstable_by_key(|&(w, d)| (d, w.0));
                reference.sort_unstable_by_key(|&(w, d)| (d, w.0));
                assert_eq!(ours, reference);
            }
        }
    }

    #[test]
    fn arena_balls_are_bit_identical_to_per_ball_extraction() {
        let mut rng = SmallRng::seed_from_u64(41);
        for family in Family::ALL {
            let g = family.generate(30, &mut rng);
            for radius in [0u32, 1, 2, 3] {
                let arena = BallArena::extract_all(&g, radius);
                assert_eq!(arena.len(), g.node_count());
                for v in g.nodes() {
                    let reference = Ball::extract(&g, v, radius);
                    let ours = arena.ball(v.index());
                    assert_eq!(ours, reference, "{} radius {radius} node {v}", family.name());
                    assert_eq!(arena.members(v.index()), &reference.members[..]);
                    assert_eq!(arena.distances(v.index()), &reference.distances[..]);
                    assert_eq!(arena.ball_len(v.index()), reference.len());
                }
            }
        }
    }

    #[test]
    fn arena_handles_disconnected_graphs() {
        // Balls on a disjoint union only cover the component of the center.
        let g = crate::ops::disjoint_union(&[&cycle(6), &prism(4)]).graph;
        let arena = BallArena::extract_all(&g, 4);
        for v in g.nodes() {
            assert_eq!(arena.ball(v.index()), Ball::extract(&g, v, 4));
        }
        assert_eq!(arena.ball_len(0), 6, "C6 balls saturate their component");
    }

    #[test]
    fn arena_totals_and_star_shapes() {
        let g = star(9);
        let arena = BallArena::extract_all(&g, 1);
        assert_eq!(arena.total_members(), 9 + 8 * 2);
        assert_eq!(arena.ball_len(0), 9);
        assert!(!arena.is_empty());
        assert_eq!(arena.radius(), 1);
    }

    #[test]
    fn working_set_bytes_tracks_array_growth() {
        let g = cycle(16);
        let small = BallArena::extract_all(&g, 1);
        let large = BallArena::extract_all(&g, 4);
        assert!(small.working_set_bytes() > 0);
        assert!(
            large.working_set_bytes() > small.working_set_bytes(),
            "larger radius must touch a larger working set"
        );
    }

    #[test]
    fn flat_lane_scatters_per_node_keys() {
        let g = cycle(10);
        let arena = BallArena::extract_all(&g, 1);
        let (lane, valid) = arena.pack_flat_lane(|v| Some(u64::from(v.0) * 3 + 1));
        assert!(valid);
        assert_eq!(lane.len(), arena.total_members());
        for i in 0..arena.len() {
            let slice = &lane[arena.flat_range(i)];
            let members = arena.members(i);
            assert_eq!(slice.len(), members.len());
            for (key, &w) in slice.iter().zip(members) {
                assert_eq!(*key, u64::from(w.0) * 3 + 1);
            }
        }
        // A `None` anywhere invalidates the lane but keeps lengths in sync.
        let (lane2, valid2) = arena.pack_flat_lane(|v| (v.0 != 3).then_some(7));
        assert!(!valid2);
        assert_eq!(lane2.len(), arena.total_members());
    }

    #[test]
    fn all_balls_agrees_with_arena() {
        let g = cycle(12);
        let balls = all_balls(&g, 2);
        let arena = BallArena::extract_all(&g, 2);
        for (i, b) in balls.iter().enumerate() {
            assert_eq!(*b, arena.ball(i));
        }
    }
}

//! Radius-`t` balls `B_G(v, t)` and canonical encodings of labeled balls.
//!
//! Following §2.1 of the paper, the ball `B_G(v, t)` is the subgraph of `G`
//! induced by all nodes at distance at most `t` from `v`, **excluding the
//! edges between nodes at distance exactly `t`** from `v`. A `t`-round
//! LOCAL algorithm is exactly a function of this ball together with the
//! inputs and identities of its nodes — that equivalence is what makes the
//! ball the unit of analysis for everything in `rlnc-core`.
//!
//! [`BallSignature`] is a canonical encoding of a ball *up to identity
//! values*: it records the structure, the distance of each node from the
//! center, an arbitrary per-ball payload (e.g. input labels), and the
//! **order type** of the identities. Two balls with equal signatures are
//! indistinguishable to any order-invariant algorithm, which is precisely
//! the finiteness argument behind Claim 2 ("there is a finite number of
//! order-invariant algorithms") and the Ramsey construction of Appendix A.

use crate::csr::{Graph, NodeId};
use crate::ids::IdAssignment;
use crate::traversal::bfs_distances_bounded;
use serde::{Deserialize, Serialize};

/// The radius-`t` ball around a center node, materialized as a small graph
/// of its own with a mapping back to the host graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ball {
    /// Radius used for extraction.
    pub radius: u32,
    /// Local index of the center (always 0).
    pub center: NodeId,
    /// Nodes of the ball, as indices of the host graph. Sorted by
    /// (distance from center, host index), so `members[0]` is the center.
    pub members: Vec<NodeId>,
    /// Distance from the center for each member (parallel to `members`).
    pub distances: Vec<u32>,
    /// The ball's own adjacency (local indices), with edges between two
    /// radius-`t` nodes removed per the paper's definition.
    pub graph: Graph,
}

impl Ball {
    /// Extracts `B_G(v, t)`.
    pub fn extract(graph: &Graph, center: NodeId, radius: u32) -> Ball {
        let mut frontier = bfs_distances_bounded(graph, center, radius);
        // Sort by (distance, host index) so the encoding is canonical and the
        // center is local index 0.
        frontier.sort_unstable_by_key(|&(v, d)| (d, v.0));
        let members: Vec<NodeId> = frontier.iter().map(|&(v, _)| v).collect();
        let distances: Vec<u32> = frontier.iter().map(|&(_, d)| d).collect();
        let local_of: std::collections::HashMap<NodeId, usize> = members
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, i))
            .collect();
        let mut b = crate::builder::GraphBuilder::new(members.len());
        for (li, &v) in members.iter().enumerate() {
            for w in graph.neighbor_ids(v) {
                if let Some(&lj) = local_of.get(&w) {
                    if lj > li {
                        // Exclude edges between two nodes at distance exactly t.
                        if distances[li] == radius && distances[lj] == radius {
                            continue;
                        }
                        b.add_edge(li, lj);
                    }
                }
            }
        }
        Ball {
            radius,
            center: NodeId(0),
            members,
            distances,
            graph: b.build(),
        }
    }

    /// Number of nodes in the ball.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if the ball contains only the center.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Host-graph node corresponding to local index `i`.
    pub fn host_node(&self, i: usize) -> NodeId {
        self.members[i]
    }

    /// Local index of a host-graph node, if it belongs to the ball.
    pub fn local_index(&self, v: NodeId) -> Option<usize> {
        self.members.iter().position(|&m| m == v)
    }

    /// Distance of local node `i` from the center.
    pub fn distance(&self, i: usize) -> u32 {
        self.distances[i]
    }

    /// Canonical signature of the ball given per-node payload labels
    /// (typically input strings) and an identity assignment on the host
    /// graph. The signature captures everything a `t`-round algorithm may
    /// depend on except the identity *values*: structure, distances,
    /// payloads, and the order type of the identities.
    pub fn signature(&self, ids: &IdAssignment, payload: impl Fn(NodeId) -> Vec<u8>) -> BallSignature {
        let order: Vec<u32> = self
            .members
            .iter()
            .map(|&v| ids.rank_within(v, &self.members) as u32)
            .collect();
        let mut edges: Vec<(u32, u32)> = self
            .graph
            .edges()
            .map(|(u, v)| (u.0, v.0))
            .collect();
        edges.sort_unstable();
        BallSignature {
            radius: self.radius,
            distances: self.distances.clone(),
            edges,
            id_order: order,
            payloads: self.members.iter().map(|&v| payload(v)).collect(),
        }
    }

    /// Signature of the unlabeled ball (no inputs, identity order only).
    pub fn structural_signature(&self, ids: &IdAssignment) -> BallSignature {
        self.signature(ids, |_| Vec::new())
    }
}

/// Canonical, hashable encoding of a labeled, ordered ball.
///
/// Equality of signatures is the "same ordered labeled ball" relation of
/// Appendix A: same structure, same distances from the center, same inputs,
/// and the same relative order of identities.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BallSignature {
    /// Extraction radius.
    pub radius: u32,
    /// Distance of each local node from the center.
    pub distances: Vec<u32>,
    /// Sorted local edge list.
    pub edges: Vec<(u32, u32)>,
    /// Rank of each local node's identity within the ball.
    pub id_order: Vec<u32>,
    /// Arbitrary per-node payload (input labels, outputs, ...).
    pub payloads: Vec<Vec<u8>>,
}

impl BallSignature {
    /// Number of nodes in the encoded ball.
    pub fn len(&self) -> usize {
        self.distances.len()
    }

    /// Returns `true` if the signature encodes an empty ball.
    pub fn is_empty(&self) -> bool {
        self.distances.is_empty()
    }
}

/// Extracts the balls of radius `t` around every node of the graph.
///
/// Runs through [`BallArena`](crate::arena::BallArena) so the bounded-BFS
/// scratch is shared across all extractions; the returned balls are
/// bit-identical to calling [`Ball::extract`] per node.
pub fn all_balls(graph: &Graph, radius: u32) -> Vec<Ball> {
    let arena = crate::arena::BallArena::extract_all(graph, radius);
    (0..arena.len()).map(|i| arena.ball(i)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{cycle, path, star};
    use crate::ids::IdAssignment;

    #[test]
    fn radius_zero_ball_is_a_single_node() {
        let g = cycle(10);
        let b = Ball::extract(&g, NodeId(3), 0);
        assert_eq!(b.len(), 1);
        assert_eq!(b.host_node(0), NodeId(3));
        assert_eq!(b.graph.edge_count(), 0);
    }

    #[test]
    fn radius_one_ball_on_cycle_is_a_path_of_three() {
        // B(v, 1) on a cycle contains v and its two neighbors; the edge
        // between the two neighbors (if any) would be between two radius-1
        // nodes and is excluded. On C_3 the two neighbors are adjacent, so
        // this exclusion matters.
        let g = cycle(3);
        let b = Ball::extract(&g, NodeId(0), 1);
        assert_eq!(b.len(), 3);
        assert_eq!(b.graph.edge_count(), 2, "edge between radius-1 nodes must be excluded");
    }

    #[test]
    fn radius_edge_exclusion_per_paper_definition() {
        let g = cycle(6);
        let b = Ball::extract(&g, NodeId(0), 2);
        // Nodes at distance <= 2 from node 0 on C_6: {0,1,5,2,4}. Edges
        // (1,2),(5,4) connect distance-1 to distance-2 nodes and stay; the
        // edge (2,3)/(3,4) are outside; there is no edge between 2 and 4.
        assert_eq!(b.len(), 5);
        assert_eq!(b.graph.edge_count(), 4);
    }

    #[test]
    fn ball_covers_whole_graph_when_radius_is_large() {
        let g = path(7);
        let b = Ball::extract(&g, NodeId(0), 10);
        assert_eq!(b.len(), 7);
        assert_eq!(b.graph.edge_count(), 6);
    }

    #[test]
    fn members_are_sorted_by_distance() {
        let g = star(8);
        let b = Ball::extract(&g, NodeId(0), 1);
        assert_eq!(b.distance(0), 0);
        assert!(b.distances.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(b.len(), 8);
    }

    #[test]
    fn local_index_round_trip() {
        let g = cycle(9);
        let b = Ball::extract(&g, NodeId(4), 2);
        for i in 0..b.len() {
            let host = b.host_node(i);
            assert_eq!(b.local_index(host), Some(i));
        }
        assert_eq!(b.local_index(NodeId(0)), None);
    }

    #[test]
    fn signatures_ignore_identity_values_but_not_order() {
        let g = cycle(8);
        let b = Ball::extract(&g, NodeId(2), 1);
        let a1 = IdAssignment::consecutive(&g);
        let a2 = IdAssignment::spread(&g, 100);
        let a3 = {
            // Reverse order: different order type on the ball.
            let n = g.node_count() as u64;
            IdAssignment::new((0..n).map(|i| n - i).collect())
        };
        let s1 = b.structural_signature(&a1);
        let s2 = b.structural_signature(&a2);
        let s3 = b.structural_signature(&a3);
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
    }

    #[test]
    fn signatures_include_payloads() {
        let g = path(5);
        let b = Ball::extract(&g, NodeId(2), 1);
        let ids = IdAssignment::consecutive(&g);
        let s1 = b.signature(&ids, |v| vec![v.0 as u8]);
        let s2 = b.signature(&ids, |_| vec![0]);
        assert_ne!(s1, s2);
        assert_eq!(s1.len(), 3);
    }

    #[test]
    fn all_balls_returns_one_ball_per_node() {
        let g = cycle(12);
        let balls = all_balls(&g, 2);
        assert_eq!(balls.len(), 12);
        assert!(balls.iter().all(|b| b.len() == 5));
    }

    #[test]
    fn cycle_balls_with_same_id_order_share_signature() {
        // On the consecutive-ID cycle, all interior balls (away from the
        // 1/n seam) have the same order type — the §4 argument.
        let g = cycle(20);
        let ids = IdAssignment::consecutive(&g);
        let t = 2u32;
        let sig_5 = Ball::extract(&g, NodeId(5), t).structural_signature(&ids);
        let sig_10 = Ball::extract(&g, NodeId(10), t).structural_signature(&ids);
        let sig_0 = Ball::extract(&g, NodeId(0), t).structural_signature(&ids);
        assert_eq!(sig_5, sig_10);
        assert_ne!(sig_5, sig_0, "the seam ball has a different order type");
    }
}

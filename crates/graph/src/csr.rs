//! Compressed-sparse-row (CSR) representation of a simple undirected graph.
//!
//! The LOCAL model places no restriction on local computation, but the
//! simulator repeatedly walks neighborhoods of every node (ball collection,
//! message exchange), so the adjacency structure is stored as two flat
//! arrays: an offset array and a concatenated, sorted neighbor array. This
//! is the layout recommended for read-mostly graph kernels in the HPC
//! guides bundled with this workspace: it is compact, cache-friendly, and
//! trivially shareable across Rayon worker threads.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a node inside a [`Graph`].
///
/// `NodeId` is a *position*, not an identity: the LOCAL-model identity of a
/// node (the `id(v)` of the paper) is stored separately in an
/// [`IdAssignment`](crate::ids::IdAssignment) so that the same topology can
/// be re-labeled without rebuilding the adjacency structure — exactly what
/// the order-invariance arguments of the paper require.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the node index as a `usize`, for indexing into per-node arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a `usize` index.
    ///
    /// # Panics
    /// Panics if `index` does not fit in a `u32`.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(index: usize) -> Self {
        NodeId::from_index(index)
    }
}

/// An immutable simple undirected graph in CSR form.
///
/// Invariants (enforced by [`GraphBuilder`](crate::builder::GraphBuilder)):
/// * no self-loops,
/// * no parallel edges,
/// * neighbor lists sorted in increasing order,
/// * every edge appears in both endpoints' neighbor lists.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    /// `offsets[v] .. offsets[v + 1]` is the slice of `neighbors` holding
    /// the adjacency of node `v`.
    offsets: Vec<u32>,
    /// Concatenated, per-node-sorted neighbor lists.
    neighbors: Vec<u32>,
}

impl Graph {
    /// Creates a graph directly from CSR arrays.
    ///
    /// This is the low-level constructor used by [`GraphBuilder`]; it
    /// checks structural well-formedness in debug builds only.
    pub(crate) fn from_csr(offsets: Vec<u32>, neighbors: Vec<u32>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap() as usize, neighbors.len());
        Graph { offsets, neighbors }
    }

    /// Creates the empty graph on `n` isolated nodes.
    pub fn empty(n: usize) -> Self {
        Graph {
            offsets: vec![0; n + 1],
            neighbors: Vec::new(),
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Returns `true` if the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.node_count() == 0
    }

    /// Iterator over all node indices.
    #[inline]
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count()).map(NodeId::from_index)
    }

    /// Degree of node `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let i = v.index();
        (self.offsets[i + 1] - self.offsets[i]) as usize
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.node_count())
            .map(|i| (self.offsets[i + 1] - self.offsets[i]) as usize)
            .max()
            .unwrap_or(0)
    }

    /// Sorted slice of neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[u32] {
        let i = v.index();
        &self.neighbors[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Iterator over the neighbors of `v` as [`NodeId`]s.
    #[inline]
    pub fn neighbor_ids(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.neighbors(v).iter().map(|&w| NodeId(w))
    }

    /// Returns `true` if `{u, v}` is an edge.
    ///
    /// Binary search over the sorted neighbor list of the lower-degree
    /// endpoint; `O(log deg)`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u == v {
            return false;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b.0).is_ok()
    }

    /// Iterator over all undirected edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .filter(move |&&w| w > u.0)
                .map(move |&w| (u, NodeId(w)))
        })
    }

    /// Sum of all degrees (twice the edge count).
    pub fn degree_sum(&self) -> usize {
        self.neighbors.len()
    }

    /// Returns a histogram `h` where `h[d]` is the number of nodes of degree `d`.
    pub fn degree_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.max_degree() + 1];
        for v in self.nodes() {
            hist[self.degree(v)] += 1;
        }
        hist
    }

    /// Checks the CSR invariants exhaustively. Intended for tests and for
    /// validating graphs produced by the gluing/subdivision operations.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.node_count();
        if self.offsets[0] != 0 {
            return Err("offsets must start at 0".into());
        }
        for i in 0..n {
            if self.offsets[i] > self.offsets[i + 1] {
                return Err(format!("offsets not monotone at node {i}"));
            }
        }
        if *self.offsets.last().unwrap() as usize != self.neighbors.len() {
            return Err("final offset does not match neighbor array length".into());
        }
        for v in self.nodes() {
            let nb = self.neighbors(v);
            for w in nb {
                if *w as usize >= n {
                    return Err(format!("neighbor {w} of {v} out of range"));
                }
                if *w == v.0 {
                    return Err(format!("self-loop at {v}"));
                }
            }
            if !nb.windows(2).all(|p| p[0] < p[1]) {
                return Err(format!("neighbor list of {v} not strictly sorted"));
            }
            for w in nb {
                if !self.neighbors(NodeId(*w)).contains(&v.0) {
                    return Err(format!("edge ({v}, v{w}) not symmetric"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn triangle() -> Graph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        b.build()
    }

    #[test]
    fn empty_graph_has_no_edges() {
        let g = Graph::empty(5);
        assert_eq!(g.node_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn triangle_structure() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.max_degree(), 2);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(2), NodeId(0)));
        assert!(!g.has_edge(NodeId(1), NodeId(1)));
        assert!(g.validate().is_ok());
    }

    #[test]
    fn edges_iterator_lists_each_edge_once() {
        let g = triangle();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        for (u, v) in edges {
            assert!(u < v);
        }
    }

    #[test]
    fn degree_histogram_counts_nodes() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build();
        let h = g.degree_histogram();
        // node 3 isolated, nodes 0 and 2 have degree 1, node 1 has degree 2.
        assert_eq!(h, vec![1, 2, 1]);
    }

    #[test]
    fn node_id_round_trip() {
        let v = NodeId::from_index(42);
        assert_eq!(v.index(), 42);
        assert_eq!(format!("{v}"), "v42");
        assert_eq!(NodeId::from(7usize), NodeId(7));
    }
}

//! Identity assignments and order-type utilities.
//!
//! In the LOCAL model every node `v` carries a positive integer identity
//! `id(v)`, pairwise distinct within the network. The paper's machinery
//! cares about identities in two distinct ways:
//!
//! * **Values** — Claim 2 needs instances whose identities are all at least
//!   `I_min`, so that hard instances can be concatenated without ID
//!   collisions (the gluing of Theorem 1).
//! * **Relative order** — order-invariant algorithms (Claim 1, Appendix A)
//!   only look at how the identities in a ball compare to each other, never
//!   at their values. [`IdAssignment::order_signature`] and
//!   [`IdAssignment::rank_within`] expose exactly this information.

use crate::csr::{Graph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// An assignment of pairwise-distinct positive integer identities to the
/// nodes of a graph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IdAssignment {
    ids: Vec<u64>,
}

impl IdAssignment {
    /// Builds an assignment from an explicit vector (`ids[v]` is the
    /// identity of node `v`).
    ///
    /// # Panics
    /// Panics if any identity is zero or if two nodes share an identity.
    pub fn new(ids: Vec<u64>) -> Self {
        let mut seen = HashSet::with_capacity(ids.len());
        for &id in &ids {
            assert!(id > 0, "identities must be positive integers");
            assert!(seen.insert(id), "duplicate identity {id}");
        }
        IdAssignment { ids }
    }

    /// Consecutive identities `1, 2, ..., n` in node-index order.
    ///
    /// On the cycle this is exactly the adversarial assignment used in §4 of
    /// the paper: adjacent nodes carry consecutive identities (except across
    /// the seam between IDs `1` and `n`), which forces any order-invariant
    /// algorithm to act identically at almost every node.
    pub fn consecutive(graph: &Graph) -> Self {
        IdAssignment {
            ids: (1..=graph.node_count() as u64).collect(),
        }
    }

    /// Consecutive identities starting from `offset + 1`. Used when
    /// concatenating instances whose identity ranges must not overlap.
    pub fn consecutive_from(graph: &Graph, offset: u64) -> Self {
        IdAssignment {
            ids: (1..=graph.node_count() as u64).map(|i| i + offset).collect(),
        }
    }

    /// A uniformly random permutation of `1..=n`.
    pub fn random_permutation<R: Rng + ?Sized>(graph: &Graph, rng: &mut R) -> Self {
        let mut ids: Vec<u64> = (1..=graph.node_count() as u64).collect();
        ids.shuffle(rng);
        IdAssignment { ids }
    }

    /// Random distinct identities drawn from `1..=universe` (sparse IDs:
    /// the LOCAL model does not require identities to be `1..n`).
    ///
    /// # Panics
    /// Panics if `universe < n`.
    pub fn random_sparse<R: Rng + ?Sized>(graph: &Graph, universe: u64, rng: &mut R) -> Self {
        let n = graph.node_count();
        assert!(universe >= n as u64, "universe too small for {n} distinct ids");
        let mut chosen = HashSet::with_capacity(n);
        let mut ids = Vec::with_capacity(n);
        while ids.len() < n {
            let candidate = rng.random_range(1..=universe);
            if chosen.insert(candidate) {
                ids.push(candidate);
            }
        }
        IdAssignment { ids }
    }

    /// Spread identities `stride, 2·stride, ...` — same order type as
    /// [`IdAssignment::consecutive`] but with large gaps, useful for testing
    /// that order-invariant algorithms ignore identity *values*.
    pub fn spread(graph: &Graph, stride: u64) -> Self {
        assert!(stride >= 1);
        IdAssignment {
            ids: (1..=graph.node_count() as u64).map(|i| i * stride).collect(),
        }
    }

    /// Number of nodes covered by the assignment.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Returns `true` if the assignment covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Identity of node `v`.
    #[inline]
    pub fn id(&self, v: NodeId) -> u64 {
        self.ids[v.index()]
    }

    /// The raw identity vector, indexed by node.
    pub fn as_slice(&self) -> &[u64] {
        &self.ids
    }

    /// Smallest identity in the assignment.
    pub fn min_id(&self) -> u64 {
        self.ids.iter().copied().min().unwrap_or(0)
    }

    /// Largest identity in the assignment.
    pub fn max_id(&self) -> u64 {
        self.ids.iter().copied().max().unwrap_or(0)
    }

    /// Shifts every identity by `offset` (keeps the order type, moves the
    /// value range — exactly the `I_min` requirement of Claim 2).
    pub fn shifted(&self, offset: u64) -> Self {
        IdAssignment {
            ids: self.ids.iter().map(|&id| id + offset).collect(),
        }
    }

    /// Concatenates two assignments (for disjoint unions of graphs).
    ///
    /// # Panics
    /// Panics if the identity ranges overlap.
    pub fn concatenate(&self, other: &IdAssignment) -> Self {
        let mut ids = self.ids.clone();
        ids.extend_from_slice(&other.ids);
        IdAssignment::new(ids)
    }

    /// Rank (0-based) of node `v`'s identity among the nodes listed in
    /// `within`. This is the only information about identities that an
    /// order-invariant algorithm is allowed to use.
    pub fn rank_within(&self, v: NodeId, within: &[NodeId]) -> usize {
        let my = self.id(v);
        within.iter().filter(|&&w| self.id(w) < my).count()
    }

    /// Order signature of a node list: `sig[i]` is the rank of `nodes[i]`'s
    /// identity within the list. Two ID assignments induce the same
    /// behaviour of an order-invariant algorithm on a ball if and only if
    /// the order signatures of the ball's node list coincide.
    pub fn order_signature(&self, nodes: &[NodeId]) -> Vec<usize> {
        nodes.iter().map(|&v| self.rank_within(v, nodes)).collect()
    }

    /// Applies an order-preserving transformation to all identity values
    /// (any strictly increasing map keeps the order type). Used by property
    /// tests asserting order-invariance.
    pub fn map_monotone(&self, f: impl Fn(u64) -> u64) -> Self {
        let mapped: Vec<u64> = self.ids.iter().map(|&id| f(id)).collect();
        // Verify monotonicity preserved distinctness on the actual values.
        IdAssignment::new(mapped)
    }
}

/// Returns `true` if the two assignments induce the same identity order on
/// the given node set (i.e. they are indistinguishable to an order-invariant
/// algorithm restricted to those nodes).
pub fn same_order_type(a: &IdAssignment, b: &IdAssignment, nodes: &[NodeId]) -> bool {
    a.order_signature(nodes) == b.order_signature(nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::cycle;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn consecutive_ids_are_1_to_n() {
        let g = cycle(5);
        let ids = IdAssignment::consecutive(&g);
        assert_eq!(ids.as_slice(), &[1, 2, 3, 4, 5]);
        assert_eq!(ids.min_id(), 1);
        assert_eq!(ids.max_id(), 5);
    }

    #[test]
    #[should_panic(expected = "duplicate identity")]
    fn duplicate_ids_rejected() {
        IdAssignment::new(vec![1, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_id_rejected() {
        IdAssignment::new(vec![0, 1]);
    }

    #[test]
    fn random_permutation_is_a_permutation() {
        let g = cycle(64);
        let mut rng = SmallRng::seed_from_u64(1);
        let ids = IdAssignment::random_permutation(&g, &mut rng);
        let mut sorted: Vec<u64> = ids.as_slice().to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, (1..=64).collect::<Vec<u64>>());
    }

    #[test]
    fn random_sparse_ids_are_distinct_and_in_range() {
        let g = cycle(20);
        let mut rng = SmallRng::seed_from_u64(2);
        let ids = IdAssignment::random_sparse(&g, 10_000, &mut rng);
        let set: HashSet<u64> = ids.as_slice().iter().copied().collect();
        assert_eq!(set.len(), 20);
        assert!(ids.max_id() <= 10_000);
        assert!(ids.min_id() >= 1);
    }

    #[test]
    fn spread_and_consecutive_have_same_order_type() {
        let g = cycle(12);
        let a = IdAssignment::consecutive(&g);
        let b = IdAssignment::spread(&g, 1000);
        let nodes: Vec<NodeId> = g.nodes().collect();
        assert!(same_order_type(&a, &b, &nodes));
    }

    #[test]
    fn shifting_preserves_order_type_and_raises_min() {
        let g = cycle(8);
        let a = IdAssignment::consecutive(&g);
        let b = a.shifted(500);
        let nodes: Vec<NodeId> = g.nodes().collect();
        assert!(same_order_type(&a, &b, &nodes));
        assert_eq!(b.min_id(), 501);
    }

    #[test]
    fn concatenation_requires_disjoint_ranges() {
        let g = cycle(4);
        let a = IdAssignment::consecutive(&g);
        let b = a.shifted(4);
        let c = a.concatenate(&b);
        assert_eq!(c.len(), 8);
        assert_eq!(c.max_id(), 8);
    }

    #[test]
    #[should_panic(expected = "duplicate identity")]
    fn concatenation_rejects_overlap() {
        let g = cycle(4);
        let a = IdAssignment::consecutive(&g);
        let _ = a.concatenate(&a);
    }

    #[test]
    fn rank_and_order_signature() {
        let g = cycle(4);
        let ids = IdAssignment::new(vec![40, 10, 30, 20]);
        let nodes: Vec<NodeId> = g.nodes().collect();
        assert_eq!(ids.order_signature(&nodes), vec![3, 0, 2, 1]);
        assert_eq!(ids.rank_within(NodeId(2), &nodes), 2);
        assert_eq!(ids.rank_within(NodeId(2), &[NodeId(2), NodeId(0)]), 0);
    }

    #[test]
    fn monotone_map_preserves_order() {
        let g = cycle(6);
        let ids = IdAssignment::consecutive(&g);
        let mapped = ids.map_monotone(|x| x * x + 7);
        let nodes: Vec<NodeId> = g.nodes().collect();
        assert!(same_order_type(&ids, &mapped, &nodes));
    }
}

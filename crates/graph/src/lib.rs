//! # rlnc-graph — graph substrate for the LOCAL-model toolkit
//!
//! The networks considered in *Randomized Local Network Computing*
//! (Feuilloley & Fraigniaud, SPAA 2015) are **connected simple graphs** of
//! bounded degree, whose nodes carry **pairwise-distinct positive integer
//! identities**. This crate provides everything the rest of the workspace
//! needs to manipulate such networks:
//!
//! * [`Graph`]: an immutable, cache-friendly CSR adjacency structure.
//! * [`GraphBuilder`]: a mutable adjacency-list builder with validation.
//! * [`generators`]: the graph families used throughout the paper's proofs
//!   and examples (cycles, paths, grids, trees, bounded-degree random
//!   graphs, ...).
//! * [`ids`]: identity assignments (consecutive, random, spread) and
//!   order-type utilities — the paper's lower-bound arguments hinge on the
//!   *relative order* of identities, not their values.
//! * [`traversal`]: BFS distances, connected components, diameter.
//! * [`ball`]: extraction of the radius-`t` ball `B_G(v,t)` exactly as
//!   defined in §2.1 of the paper, plus canonical encodings of labeled
//!   balls used by the order-invariant machinery.
//! * [`arena`]: batched extraction of *every* node's ball into flat shared
//!   arrays with a reusable bounded-BFS scratch — the allocation-free
//!   substrate of the `rlnc-engine` execution planner.
//! * [`ops`]: disjoint unions, edge subdivisions, and the Theorem-1
//!   **gluing** construction that connects hard instances into a single
//!   connected bounded-degree graph.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arena;
pub mod ball;
pub mod builder;
pub mod csr;
pub mod generators;
pub mod ids;
pub mod ops;
pub mod traversal;

pub use arena::{BallArena, BfsScratch};
pub use ball::{Ball, BallSignature};
pub use builder::GraphBuilder;
pub use csr::{Graph, NodeId};
pub use ids::IdAssignment;
pub use traversal::{bfs_distances, connected_components, diameter, is_connected};

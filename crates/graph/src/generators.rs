//! Generators for the graph families used throughout the paper.
//!
//! The lower-bound arguments instantiate specific families: the `n`-node
//! cycle (3-coloring, Corollary 1), paths, bounded-degree graphs with large
//! diameter (Claim 2), grids and trees as generic bounded-degree test beds,
//! and random bounded-degree graphs for Monte-Carlo estimation. All
//! generators produce **connected simple graphs** unless stated otherwise,
//! and all randomized generators take an explicit RNG so experiments are
//! reproducible.

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::traversal::is_connected;
use rand::seq::SliceRandom;
use rand::Rng;

/// The cycle `C_n` on `n ≥ 3` nodes: node `i` is adjacent to `(i ± 1) mod n`.
///
/// # Panics
/// Panics if `n < 3` (a cycle needs at least three nodes to be simple).
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "a simple cycle needs at least 3 nodes, got {n}");
    GraphBuilder::from_edges(n, (0..n).map(|i| (i, (i + 1) % n)))
}

/// The path `P_n` on `n ≥ 1` nodes: node `i` is adjacent to `i + 1`.
pub fn path(n: usize) -> Graph {
    assert!(n >= 1, "a path needs at least one node");
    GraphBuilder::from_edges(n, (0..n.saturating_sub(1)).map(|i| (i, i + 1)))
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// The star `K_{1,n-1}` with center node `0`.
pub fn star(n: usize) -> Graph {
    assert!(n >= 1);
    GraphBuilder::from_edges(n, (1..n).map(|i| (0, i)))
}

/// A complete binary tree on `n` nodes (heap indexing: children of `i` are
/// `2i + 1` and `2i + 2`). Maximum degree 3.
pub fn binary_tree(n: usize) -> Graph {
    assert!(n >= 1);
    let mut b = GraphBuilder::new(n);
    for i in 0..n {
        for c in [2 * i + 1, 2 * i + 2] {
            if c < n {
                b.add_edge(i, c);
            }
        }
    }
    b.build()
}

/// The `rows × cols` grid graph (maximum degree 4).
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 1 && cols >= 1);
    let idx = |r: usize, c: usize| r * cols + c;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(idx(r, c), idx(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(idx(r, c), idx(r + 1, c));
            }
        }
    }
    b.build()
}

/// The `rows × cols` torus (grid with wrap-around edges, 4-regular when both
/// dimensions are at least 3).
pub fn torus(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus needs both dimensions >= 3");
    let idx = |r: usize, c: usize| r * cols + c;
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            b.add_edge(idx(r, c), idx(r, (c + 1) % cols));
            b.add_edge(idx(r, c), idx((r + 1) % rows, c));
        }
    }
    b.build()
}

/// The circulant graph `C_n(offsets)`: node `i` is adjacent to
/// `(i ± o) mod n` for every offset `o`. With offsets `{1}` this is the
/// cycle; with `{1, 2}` the squared cycle (4-regular) — a deterministic
/// bounded-degree family the sweep scenarios use as a ring-like topology
/// with chords.
///
/// # Panics
/// Panics if `n < 3`, if `offsets` is empty, if an offset is `0` or
/// ≥ `n`, or if `gcd(n, offsets...) != 1` (which would disconnect the
/// graph — all generators here promise connected outputs).
pub fn circulant(n: usize, offsets: &[usize]) -> Graph {
    assert!(n >= 3, "a circulant graph needs at least 3 nodes, got {n}");
    assert!(!offsets.is_empty(), "need at least one offset");
    let mut g = n;
    for &o in offsets {
        assert!(o >= 1 && o < n, "offset {o} out of range 1..{n}");
        let (mut a, mut b) = (g, o);
        while b != 0 {
            (a, b) = (b, a % b);
        }
        g = a;
    }
    assert!(g == 1, "gcd(n, offsets) = {g} != 1 would disconnect the circulant graph");
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for &o in offsets {
            let w = (v + o) % n;
            if !b.has_edge(v, w) {
                b.add_edge(v, w);
            }
        }
    }
    b.build()
}

/// The prism (circular ladder) `CL_n`: two concentric `n`-cycles joined by
/// rungs. 3-regular on `2n` nodes — a deterministic counterpart to the
/// random cubic family.
///
/// # Panics
/// Panics if `n < 3`.
pub fn prism(n: usize) -> Graph {
    assert!(n >= 3, "a prism needs at least 3 nodes per cycle, got {n}");
    let mut b = GraphBuilder::new(2 * n);
    for i in 0..n {
        b.add_edge(i, (i + 1) % n); // outer cycle
        b.add_edge(n + i, n + (i + 1) % n); // inner cycle
        b.add_edge(i, n + i); // rung
    }
    b.build()
}

/// The `d`-dimensional hypercube on `2^d` nodes (`d`-regular).
pub fn hypercube(d: u32) -> Graph {
    let n = 1usize << d;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..d {
            let w = v ^ (1 << bit);
            if w > v {
                b.add_edge(v, w);
            }
        }
    }
    b.build()
}

/// A caterpillar: a path of `spine` nodes where every spine node gets
/// `legs` pendant leaves. Useful as a bounded-degree, large-diameter family.
pub fn caterpillar(spine: usize, legs: usize) -> Graph {
    assert!(spine >= 1);
    let n = spine + spine * legs;
    let mut b = GraphBuilder::new(n);
    for i in 0..spine.saturating_sub(1) {
        b.add_edge(i, i + 1);
    }
    for i in 0..spine {
        for l in 0..legs {
            b.add_edge(i, spine + i * legs + l);
        }
    }
    b.build()
}

/// A uniformly random labelled tree on `n` nodes via a random Prüfer
/// sequence. Always connected; maximum degree is random but `O(log n /
/// log log n)` with high probability.
pub fn random_tree<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Graph {
    assert!(n >= 1);
    if n == 1 {
        return Graph::empty(1);
    }
    if n == 2 {
        return GraphBuilder::from_edges(2, [(0, 1)]);
    }
    let prufer: Vec<usize> = (0..n - 2).map(|_| rng.random_range(0..n)).collect();
    let mut degree = vec![1usize; n];
    for &p in &prufer {
        degree[p] += 1;
    }
    let mut b = GraphBuilder::new(n);
    // Standard Prüfer decoding with a scan pointer and a "leaf" candidate.
    let mut ptr = 0usize;
    while degree[ptr] != 1 {
        ptr += 1;
    }
    let mut leaf = ptr;
    for &p in &prufer {
        b.add_edge(leaf, p);
        degree[p] -= 1;
        if degree[p] == 1 && p < ptr {
            leaf = p;
        } else {
            ptr += 1;
            while degree[ptr] != 1 {
                ptr += 1;
            }
            leaf = ptr;
        }
    }
    b.add_edge(leaf, n - 1);
    b.build()
}

/// A random `d`-regular simple graph on `n` nodes via the configuration
/// model with restarts (pairings producing loops or multi-edges are
/// rejected and the whole pairing is resampled).
///
/// # Panics
/// Panics if `n * d` is odd, if `d >= n`, or if no simple pairing is found
/// after a large number of restarts (practically impossible for the sizes
/// used in the experiments).
pub fn random_regular<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Graph {
    assert!(d < n, "degree {d} must be smaller than node count {n}");
    assert!((n * d) % 2 == 0, "n * d must be even");
    if d == 0 {
        return Graph::empty(n);
    }
    'restart: for _ in 0..10_000 {
        let mut stubs: Vec<usize> = (0..n).flat_map(|v| std::iter::repeat(v).take(d)).collect();
        stubs.shuffle(rng);
        let mut b = GraphBuilder::new(n);
        for pair in stubs.chunks_exact(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v || b.has_edge(u, v) {
                continue 'restart;
            }
            b.add_edge(u, v);
        }
        let g = b.build();
        if is_connected(&g) {
            return g;
        }
    }
    panic!("failed to generate a connected {d}-regular graph on {n} nodes");
}

/// A connected Erdős–Rényi-style random graph with a hard maximum-degree
/// cap `max_degree` (edges violating the cap are skipped), built over a
/// random spanning tree so the result is always connected.
///
/// `extra_edge_prob` is the probability with which each non-tree candidate
/// edge (sampled `2 n` times) is added, subject to the degree cap.
pub fn random_bounded_degree<R: Rng + ?Sized>(
    n: usize,
    max_degree: usize,
    extra_edge_prob: f64,
    rng: &mut R,
) -> Graph {
    assert!(max_degree >= 2, "need max_degree >= 2 to stay connected");
    assert!((0.0..=1.0).contains(&extra_edge_prob));
    if n <= 1 {
        return Graph::empty(n);
    }
    let mut b = GraphBuilder::new(n);
    // Random spanning tree with degree cap: attach node i to a random
    // earlier node whose degree still has room (fall back to node i-1 which,
    // in the worst case, forms a path and never exceeds degree 2).
    for i in 1..n {
        let mut attached = false;
        for _ in 0..16 {
            let j = rng.random_range(0..i);
            if b.degree(j) < max_degree {
                b.add_edge(i, j);
                attached = true;
                break;
            }
        }
        if !attached {
            b.add_edge(i, i - 1);
        }
    }
    // Extra random edges, respecting the cap.
    for _ in 0..(2 * n) {
        if rng.random_bool(extra_edge_prob) {
            let u = rng.random_range(0..n);
            let v = rng.random_range(0..n);
            if u != v && !b.has_edge(u, v) && b.degree(u) < max_degree && b.degree(v) < max_degree {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

/// The named graph families used by the experiment harness, so experiments
/// can be parameterised by family without closures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Family {
    /// `cycle(n)`
    Cycle,
    /// `path(n)`
    Path,
    /// `grid(√n, √n)` (rounded)
    Grid,
    /// `binary_tree(n)`
    BinaryTree,
    /// `random_regular(n, 3, rng)`
    Cubic,
    /// `random_bounded_degree(n, 4, 0.3, rng)`
    BoundedDegree4,
    /// `torus(√n, √n)` (rounded, 4-regular) — a wrap-around topology the
    /// paper's ring-centric experiments never touch.
    Torus,
    /// `random_regular(n, 4, rng)` — the random `d`-regular family at
    /// degree 4.
    RandomRegular4,
    /// `circulant(n, {1, 2})` — the squared cycle, a deterministic
    /// 4-regular ring with chords.
    Circulant2,
    /// `prism(n/2)` — the circular ladder `CL_{n/2}`, a deterministic
    /// 3-regular counterpart to the random cubic family.
    Prism,
}

impl Family {
    /// All families, for exhaustive sweeps.
    pub const ALL: [Family; 10] = [
        Family::Cycle,
        Family::Path,
        Family::Grid,
        Family::BinaryTree,
        Family::Cubic,
        Family::BoundedDegree4,
        Family::Torus,
        Family::RandomRegular4,
        Family::Circulant2,
        Family::Prism,
    ];

    /// Human-readable name used in experiment tables.
    pub fn name(&self) -> &'static str {
        match self {
            Family::Cycle => "cycle",
            Family::Path => "path",
            Family::Grid => "grid",
            Family::BinaryTree => "binary-tree",
            Family::Cubic => "random-3-regular",
            Family::BoundedDegree4 => "random-maxdeg-4",
            Family::Torus => "torus",
            Family::RandomRegular4 => "random-4-regular",
            Family::Circulant2 => "circulant-1-2",
            Family::Prism => "prism",
        }
    }

    /// Parses the spelling produced by [`Family::name`].
    pub fn parse(name: &str) -> Option<Family> {
        Family::ALL.into_iter().find(|f| f.name() == name)
    }

    /// Returns `true` if [`Family::generate`] draws from the RNG (so each
    /// call yields a different member); deterministic families always
    /// return the same graph for a given `n` and can be built once and
    /// reused across Monte-Carlo trials.
    pub fn is_randomized(&self) -> bool {
        matches!(
            self,
            Family::Cubic | Family::BoundedDegree4 | Family::RandomRegular4
        )
    }

    /// Maximum degree guaranteed by this family.
    pub fn degree_bound(&self) -> usize {
        match self {
            Family::Cycle | Family::Path => 2,
            Family::BinaryTree | Family::Cubic | Family::Prism => 3,
            Family::Grid
            | Family::BoundedDegree4
            | Family::Torus
            | Family::RandomRegular4
            | Family::Circulant2 => 4,
        }
    }

    /// Instantiates a member of the family with roughly `n` nodes.
    pub fn generate<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Graph {
        match self {
            Family::Cycle => cycle(n.max(3)),
            Family::Path => path(n.max(2)),
            Family::Grid => {
                let side = (n as f64).sqrt().round().max(2.0) as usize;
                grid(side, side)
            }
            Family::BinaryTree => binary_tree(n.max(1)),
            Family::Cubic => {
                let n = if n % 2 == 1 { n + 1 } else { n }.max(4);
                random_regular(n, 3, rng)
            }
            Family::BoundedDegree4 => random_bounded_degree(n.max(2), 4, 0.3, rng),
            Family::Torus => {
                let side = (n as f64).sqrt().round().max(3.0) as usize;
                torus(side, side)
            }
            Family::RandomRegular4 => random_regular(n.max(5), 4, rng),
            Family::Circulant2 => circulant(n.max(5), &[1, 2]),
            Family::Prism => prism((n / 2).max(3)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traversal::{diameter, is_connected};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn cycle_is_2_regular_and_connected() {
        let g = cycle(17);
        assert_eq!(g.node_count(), 17);
        assert_eq!(g.edge_count(), 17);
        assert!(g.nodes().all(|v| g.degree(v) == 2));
        assert!(is_connected(&g));
        assert_eq!(diameter(&g), Some(8));
    }

    #[test]
    fn path_has_two_endpoints() {
        let g = path(10);
        assert_eq!(g.edge_count(), 9);
        let deg1 = g.nodes().filter(|&v| g.degree(v) == 1).count();
        assert_eq!(deg1, 2);
        assert_eq!(diameter(&g), Some(9));
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = complete(6);
        assert_eq!(g.edge_count(), 15);
        assert_eq!(g.max_degree(), 5);
    }

    #[test]
    fn star_has_center() {
        let g = star(9);
        assert_eq!(g.degree(crate::NodeId(0)), 8);
        assert_eq!(g.edge_count(), 8);
    }

    #[test]
    fn binary_tree_degree_bounded_by_3() {
        let g = binary_tree(31);
        assert!(g.max_degree() <= 3);
        assert_eq!(g.edge_count(), 30);
        assert!(is_connected(&g));
    }

    #[test]
    fn grid_and_torus_degrees() {
        let g = grid(5, 7);
        assert_eq!(g.node_count(), 35);
        assert_eq!(g.max_degree(), 4);
        assert!(is_connected(&g));
        let t = torus(5, 7);
        assert!(t.nodes().all(|v| t.degree(v) == 4));
    }

    #[test]
    fn hypercube_is_regular() {
        let g = hypercube(4);
        assert_eq!(g.node_count(), 16);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert_eq!(diameter(&g), Some(4));
    }

    #[test]
    fn caterpillar_structure() {
        let g = caterpillar(5, 2);
        assert_eq!(g.node_count(), 15);
        assert_eq!(g.edge_count(), 14);
        assert!(is_connected(&g));
        assert!(g.max_degree() <= 4);
    }

    #[test]
    fn random_tree_is_a_tree() {
        let mut rng = SmallRng::seed_from_u64(7);
        for n in [1usize, 2, 3, 10, 57, 200] {
            let g = random_tree(n, &mut rng);
            assert_eq!(g.node_count(), n);
            assert_eq!(g.edge_count(), n.saturating_sub(1));
            assert!(is_connected(&g));
        }
    }

    #[test]
    fn random_regular_has_exact_degree() {
        let mut rng = SmallRng::seed_from_u64(11);
        let g = random_regular(50, 3, &mut rng);
        assert!(g.nodes().all(|v| g.degree(v) == 3));
        assert!(is_connected(&g));
        assert!(g.validate().is_ok());
    }

    #[test]
    fn random_bounded_degree_respects_cap() {
        let mut rng = SmallRng::seed_from_u64(13);
        let g = random_bounded_degree(200, 4, 0.5, &mut rng);
        assert!(g.max_degree() <= 4);
        assert!(is_connected(&g));
    }

    #[test]
    fn circulant_squared_cycle_is_4_regular() {
        let g = circulant(11, &[1, 2]);
        assert_eq!(g.node_count(), 11);
        assert!(g.nodes().all(|v| g.degree(v) == 4));
        assert!(is_connected(&g));
        assert!(g.validate().is_ok());
        // Offset n/2 contributes a single matching chord (degree 3 total).
        let m = circulant(8, &[1, 4]);
        assert!(m.nodes().all(|v| m.degree(v) == 3));
    }

    #[test]
    #[should_panic(expected = "disconnect")]
    fn circulant_rejects_disconnecting_offsets() {
        let _ = circulant(9, &[3, 6]);
    }

    #[test]
    fn prism_is_cubic_and_connected() {
        let g = prism(7);
        assert_eq!(g.node_count(), 14);
        assert_eq!(g.edge_count(), 21);
        assert!(g.nodes().all(|v| g.degree(v) == 3));
        assert!(is_connected(&g));
    }

    #[test]
    fn families_generate_connected_graphs_within_degree_bound() {
        let mut rng = SmallRng::seed_from_u64(5);
        for family in Family::ALL {
            let g = family.generate(40, &mut rng);
            assert!(is_connected(&g), "{} not connected", family.name());
            assert!(
                g.max_degree() <= family.degree_bound(),
                "{} exceeds degree bound",
                family.name()
            );
            assert_eq!(Family::parse(family.name()), Some(family));
            if !family.is_randomized() {
                // Deterministic families must reproduce the same edge set.
                let mut rng2 = SmallRng::seed_from_u64(999);
                let h = family.generate(40, &mut rng2);
                assert_eq!(
                    g.edges().collect::<Vec<_>>(),
                    h.edges().collect::<Vec<_>>(),
                    "{} claims determinism but differs across RNGs",
                    family.name()
                );
            }
        }
        assert_eq!(Family::parse("klein-bottle"), None);
        assert!(Family::Cubic.is_randomized());
        assert!(!Family::Torus.is_randomized());
    }
}

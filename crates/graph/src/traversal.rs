//! Breadth-first traversals, distances, components, and diameter.
//!
//! The LOCAL model's only resource is distance, so almost every part of the
//! toolkit reduces to BFS: ball extraction, the `far from u` predicate of
//! Theorem 1 (distance `> t + t'`), the anchor-set construction (pairwise
//! distance `≥ 2(t + t')`), and the diameter lower bounds of Claim 2.

use crate::csr::{Graph, NodeId};
use std::collections::VecDeque;

/// Distance value marking unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

/// Single-source BFS distances from `source`.
///
/// Returns a vector `d` with `d[v] = dist(source, v)` and
/// [`UNREACHABLE`] for nodes in other components.
pub fn bfs_distances(graph: &Graph, source: NodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; graph.node_count()];
    let mut queue = VecDeque::new();
    dist[source.index()] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        for w in graph.neighbor_ids(u) {
            if dist[w.index()] == UNREACHABLE {
                dist[w.index()] = du + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// The nodes participating in the combined "accepts far from every anchor"
/// event of Claims 4–5: a node participates iff it lies at distance
/// **greater than** `exclusion_radius` from *at least one* anchor (for each
/// anchor, the nodes beyond its exclusion ball must accept; a node inside
/// every anchor's ball is never quantified over). Computing this mask once
/// per glued instance replaces a per-trial, per-anchor BFS in the legacy
/// estimators. Returned in ascending node order.
pub fn nodes_far_from_any(graph: &Graph, anchors: &[NodeId], exclusion_radius: u32) -> Vec<NodeId> {
    let mut participates = vec![false; graph.node_count()];
    for &anchor in anchors {
        let dist = bfs_distances(graph, anchor);
        for v in graph.nodes() {
            if dist[v.index()] > exclusion_radius {
                participates[v.index()] = true;
            }
        }
    }
    graph.nodes().filter(|v| participates[v.index()]).collect()
}

/// BFS truncated at radius `t`: distances `> t` are reported as
/// [`UNREACHABLE`]. Cost is proportional to the size of the ball, not the
/// graph, which matters when collecting constant-radius views of every node
/// of a large network.
pub fn bfs_distances_bounded(graph: &Graph, source: NodeId, t: u32) -> Vec<(NodeId, u32)> {
    let mut dist: Vec<(NodeId, u32)> = Vec::new();
    let mut seen = std::collections::HashMap::new();
    let mut queue = VecDeque::new();
    seen.insert(source, 0u32);
    queue.push_back(source);
    dist.push((source, 0));
    while let Some(u) = queue.pop_front() {
        let du = seen[&u];
        if du == t {
            continue;
        }
        for w in graph.neighbor_ids(u) {
            if !seen.contains_key(&w) {
                seen.insert(w, du + 1);
                dist.push((w, du + 1));
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Shortest-path distance between `u` and `v`, or `None` if disconnected.
pub fn distance(graph: &Graph, u: NodeId, v: NodeId) -> Option<u32> {
    let d = bfs_distances(graph, u)[v.index()];
    (d != UNREACHABLE).then_some(d)
}

/// Returns `true` if the graph is connected (the empty graph and the
/// single-node graph count as connected).
pub fn is_connected(graph: &Graph) -> bool {
    if graph.node_count() <= 1 {
        return true;
    }
    let dist = bfs_distances(graph, NodeId(0));
    dist.iter().all(|&d| d != UNREACHABLE)
}

/// Connected components as a vector `comp` with `comp[v]` the component
/// index of node `v` (components numbered in order of discovery from node 0).
pub fn connected_components(graph: &Graph) -> Vec<usize> {
    let n = graph.node_count();
    let mut comp = vec![usize::MAX; n];
    let mut next = 0usize;
    for start in 0..n {
        if comp[start] != usize::MAX {
            continue;
        }
        let mut queue = VecDeque::new();
        comp[start] = next;
        queue.push_back(NodeId::from_index(start));
        while let Some(u) = queue.pop_front() {
            for w in graph.neighbor_ids(u) {
                if comp[w.index()] == usize::MAX {
                    comp[w.index()] = next;
                    queue.push_back(w);
                }
            }
        }
        next += 1;
    }
    comp
}

/// Number of connected components.
pub fn component_count(graph: &Graph) -> usize {
    connected_components(graph).iter().copied().max().map_or(0, |m| m + 1)
}

/// Eccentricity of `v` (max distance to any reachable node).
pub fn eccentricity(graph: &Graph, v: NodeId) -> u32 {
    bfs_distances(graph, v)
        .into_iter()
        .filter(|&d| d != UNREACHABLE)
        .max()
        .unwrap_or(0)
}

/// Exact diameter by running BFS from every node. `None` for disconnected
/// graphs. Quadratic — fine for the experiment sizes (≤ a few thousand
/// nodes); use [`diameter_double_sweep`] as a fast lower bound for larger
/// graphs.
pub fn diameter(graph: &Graph) -> Option<u32> {
    if graph.node_count() == 0 {
        return Some(0);
    }
    if !is_connected(graph) {
        return None;
    }
    Some(
        graph
            .nodes()
            .map(|v| eccentricity(graph, v))
            .max()
            .unwrap_or(0),
    )
}

/// Double-sweep diameter lower bound: BFS from `start`, then BFS from the
/// farthest node found. Exact on trees; a lower bound in general.
pub fn diameter_double_sweep(graph: &Graph, start: NodeId) -> u32 {
    let d1 = bfs_distances(graph, start);
    let far = d1
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != UNREACHABLE)
        .max_by_key(|(_, &d)| d)
        .map(|(i, _)| NodeId::from_index(i))
        .unwrap_or(start);
    eccentricity(graph, far)
}

/// Greedily selects a set of nodes that are pairwise at distance at least
/// `min_distance` from each other, up to `limit` nodes, scanning nodes in
/// index order. This realizes the anchor set `S` of the Theorem-1 proof
/// (µ nodes pairwise at distance ≥ 2(t + t')).
pub fn spread_set(graph: &Graph, min_distance: u32, limit: usize) -> Vec<NodeId> {
    let mut chosen: Vec<NodeId> = Vec::new();
    let mut blocked = vec![false; graph.node_count()];
    for v in graph.nodes() {
        if chosen.len() >= limit {
            break;
        }
        if blocked[v.index()] {
            continue;
        }
        chosen.push(v);
        if min_distance > 0 {
            for (w, _) in bfs_distances_bounded(graph, v, min_distance - 1) {
                blocked[w.index()] = true;
            }
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{cycle, grid, path, star};

    #[test]
    fn bfs_distances_on_path() {
        let g = path(6);
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(distance(&g, NodeId(1), NodeId(4)), Some(3));
    }

    #[test]
    fn bounded_bfs_truncates() {
        let g = path(10);
        let ball = bfs_distances_bounded(&g, NodeId(5), 2);
        let mut nodes: Vec<usize> = ball.iter().map(|(v, _)| v.index()).collect();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![3, 4, 5, 6, 7]);
    }

    #[test]
    fn components_of_disconnected_graph() {
        let mut g = crate::GraphBuilder::new(5);
        g.add_edge(0, 1);
        g.add_edge(3, 4);
        let g = g.build();
        let comp = connected_components(&g);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert_eq!(component_count(&g), 3);
        assert!(!is_connected(&g));
        assert_eq!(diameter(&g), None);
    }

    #[test]
    fn diameter_of_known_graphs() {
        assert_eq!(diameter(&cycle(10)), Some(5));
        assert_eq!(diameter(&cycle(11)), Some(5));
        assert_eq!(diameter(&path(8)), Some(7));
        assert_eq!(diameter(&star(10)), Some(2));
        assert_eq!(diameter(&grid(3, 4)), Some(5));
    }

    #[test]
    fn double_sweep_is_exact_on_paths() {
        let g = path(20);
        assert_eq!(diameter_double_sweep(&g, NodeId(7)), 19);
    }

    #[test]
    fn spread_set_respects_min_distance() {
        let g = cycle(30);
        let s = spread_set(&g, 6, 10);
        assert!(s.len() >= 4);
        for (i, &u) in s.iter().enumerate() {
            for &v in &s[i + 1..] {
                assert!(distance(&g, u, v).unwrap() >= 6);
            }
        }
    }

    #[test]
    fn spread_set_limit_is_respected() {
        let g = cycle(100);
        let s = spread_set(&g, 2, 3);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn far_from_any_is_the_union_of_ball_complements() {
        let g = cycle(12);
        let anchors = [NodeId(0), NodeId(6)];
        let far = nodes_far_from_any(&g, &anchors, 2);
        for v in g.nodes() {
            let expected = anchors
                .iter()
                .any(|&a| distance(&g, a, v).unwrap() > 2);
            assert_eq!(far.contains(&v), expected, "node {v}");
        }
        // Radius 0 excludes only the anchors themselves.
        let far0 = nodes_far_from_any(&g, &[NodeId(3)], 0);
        assert_eq!(far0.len(), 11);
        // A radius covering the whole graph leaves no participants.
        assert!(nodes_far_from_any(&g, &[NodeId(0)], 6).is_empty());
    }
}

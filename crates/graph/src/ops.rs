//! Graph surgery: disjoint unions, edge subdivision, and the Theorem-1
//! gluing construction.
//!
//! The proof of Theorem 1 builds a single connected bounded-degree instance
//! out of `ν'` hard instances `H_1, ..., H_{ν'}` as follows: in each `H_i`
//! pick an anchor node `u_i` and an edge `e_i` incident to it, subdivide
//! `e_i` twice (inserting fresh nodes `v_i` and `w_i`), then add the edges
//! `{v_i, w_{i+1}}` for `i < ν'` and `{v_{ν'}, w_1}`. The result is
//! connected, keeps the maximum degree at most `k` (for `k > 2`, since the
//! inserted nodes have degree 3 at most... in fact degree 3 never occurs:
//! subdivision nodes have degree 2 inside their instance and gain exactly
//! one inter-instance edge, so their degree is 3 ≤ k), and keeps every node
//! of `H_i` at its original distance from every other node of `H_i` that is
//! far from the anchor.

use crate::builder::GraphBuilder;
use crate::csr::{Graph, NodeId};
use crate::ids::IdAssignment;

/// Result of a disjoint union: the combined graph plus, for each part, the
/// offset to add to a part-local node index to obtain the union index.
#[derive(Debug, Clone)]
pub struct DisjointUnion {
    /// The union graph.
    pub graph: Graph,
    /// `offsets[i]` is the index in the union of node 0 of part `i`.
    pub offsets: Vec<usize>,
}

impl DisjointUnion {
    /// Maps a node of part `part` to its index in the union graph.
    pub fn map(&self, part: usize, v: NodeId) -> NodeId {
        NodeId::from_index(self.offsets[part] + v.index())
    }

    /// Returns which part a union node belongs to and its part-local index.
    pub fn part_of(&self, v: NodeId) -> (usize, NodeId) {
        let idx = v.index();
        let part = match self.offsets.binary_search(&idx) {
            Ok(p) => p,
            Err(p) => p - 1,
        };
        (part, NodeId::from_index(idx - self.offsets[part]))
    }
}

/// Disjoint union of several graphs (Claim 3 operates on such unions).
pub fn disjoint_union(parts: &[&Graph]) -> DisjointUnion {
    let total: usize = parts.iter().map(|g| g.node_count()).sum();
    let mut b = GraphBuilder::new(total);
    let mut offsets = Vec::with_capacity(parts.len());
    let mut base = 0usize;
    for g in parts {
        offsets.push(base);
        for (u, v) in g.edges() {
            b.add_edge(base + u.index(), base + v.index());
        }
        base += g.node_count();
    }
    DisjointUnion {
        graph: b.build(),
        offsets,
    }
}

/// Concatenates identity assignments for a disjoint union, shifting each
/// part so the ranges are pairwise disjoint (part `i+1` starts above the
/// maximum identity of parts `0..=i`). Mirrors the instance concatenation
/// in the proof of Claim 3.
pub fn concatenate_ids(parts: &[&IdAssignment]) -> IdAssignment {
    let mut ids: Vec<u64> = Vec::new();
    let mut floor = 0u64;
    for part in parts {
        let min = part.min_id();
        // Shift so that the smallest identity of this part is floor + 1.
        let shift = floor + 1 - min.min(floor + 1);
        let shifted: Vec<u64> = part.as_slice().iter().map(|&x| x + shift).collect();
        floor = shifted.iter().copied().max().unwrap_or(floor);
        ids.extend(shifted);
    }
    IdAssignment::new(ids)
}

/// A single subdivided instance inside a [`Gluing`]: which union-level
/// nodes were inserted, and where the anchor ended up.
#[derive(Debug, Clone)]
pub struct GluedPart {
    /// Index in the glued graph of node 0 of this part.
    pub offset: usize,
    /// Number of original nodes of this part.
    pub original_len: usize,
    /// Anchor node `u_i`, as a glued-graph index.
    pub anchor: NodeId,
    /// First inserted subdivision node `v_i` (glued-graph index).
    pub sub_v: NodeId,
    /// Second inserted subdivision node `w_i` (glued-graph index).
    pub sub_w: NodeId,
}

/// The connected gluing of several instances (Theorem 1).
#[derive(Debug, Clone)]
pub struct Gluing {
    /// The glued connected graph.
    pub graph: Graph,
    /// Bookkeeping for each glued part, in input order.
    pub parts: Vec<GluedPart>,
}

impl Gluing {
    /// Maps a node of part `part` (original instance index) to the glued graph.
    pub fn map(&self, part: usize, v: NodeId) -> NodeId {
        NodeId::from_index(self.parts[part].offset + v.index())
    }

    /// Returns the part that a glued node originally belonged to, or `None`
    /// for inserted subdivision nodes.
    pub fn origin(&self, v: NodeId) -> Option<(usize, NodeId)> {
        for (i, p) in self.parts.iter().enumerate() {
            if v.index() >= p.offset && v.index() < p.offset + p.original_len {
                return Some((i, NodeId::from_index(v.index() - p.offset)));
            }
        }
        None
    }
}

/// Glues instances `(H_i, anchor_i)` into one connected graph following the
/// Theorem-1 construction. For each part, the lexicographically smallest
/// edge incident to the anchor is subdivided twice, and the inserted nodes
/// are ring-connected across parts.
///
/// # Panics
/// Panics if fewer than two parts are supplied or if an anchor is isolated.
pub fn glue_instances(parts: &[(&Graph, NodeId)]) -> Gluing {
    assert!(parts.len() >= 2, "gluing needs at least two instances");
    let originals: usize = parts.iter().map(|(g, _)| g.node_count()).sum();
    // Two inserted nodes per part.
    let total = originals + 2 * parts.len();
    let mut b = GraphBuilder::new(total);
    let mut glued_parts: Vec<GluedPart> = Vec::with_capacity(parts.len());
    let mut base = 0usize;
    let mut next_inserted = originals;
    for (g, anchor) in parts {
        assert!(
            g.degree(*anchor) >= 1,
            "anchor {anchor} must have an incident edge to subdivide"
        );
        // Copy all edges except the subdivided one.
        let neighbor = NodeId(g.neighbors(*anchor)[0]);
        for (u, v) in g.edges() {
            let is_subdivided = (u == *anchor && v == neighbor) || (v == *anchor && u == neighbor);
            if !is_subdivided {
                b.add_edge(base + u.index(), base + v.index());
            }
        }
        // Subdivide {anchor, neighbor} twice: anchor - v_i - w_i - neighbor.
        let v_i = next_inserted;
        let w_i = next_inserted + 1;
        next_inserted += 2;
        b.add_edge(base + anchor.index(), v_i);
        b.add_edge(v_i, w_i);
        b.add_edge(w_i, base + neighbor.index());
        glued_parts.push(GluedPart {
            offset: base,
            original_len: g.node_count(),
            anchor: NodeId::from_index(base + anchor.index()),
            sub_v: NodeId::from_index(v_i),
            sub_w: NodeId::from_index(w_i),
        });
        base += g.node_count();
    }
    // Ring-connect the inserted nodes: v_i — w_{i+1}, and v_last — w_1.
    let nu = glued_parts.len();
    for i in 0..nu {
        let j = (i + 1) % nu;
        b.add_edge(glued_parts[i].sub_v, glued_parts[j].sub_w);
    }
    Gluing {
        graph: b.build(),
        parts: glued_parts,
    }
}

/// Builds an identity assignment for a [`Gluing`]: part identities are
/// shifted into disjoint ranges (as in Claim 2 / Claim 3) and the inserted
/// subdivision nodes receive fresh identities above every part's range
/// ("inputs and identities given to the nodes of `G` not in some `H_i` are
/// set arbitrarily", §3).
pub fn glued_ids(gluing: &Gluing, parts: &[&IdAssignment]) -> IdAssignment {
    assert_eq!(gluing.parts.len(), parts.len());
    let originals: usize = gluing.parts.iter().map(|p| p.original_len).sum();
    let mut ids = vec![0u64; gluing.graph.node_count()];
    let mut floor = 0u64;
    for (gp, part_ids) in gluing.parts.iter().zip(parts) {
        assert_eq!(gp.original_len, part_ids.len());
        let min = part_ids.min_id();
        let shift = floor + 1 - min.min(floor + 1);
        for (local, &id) in part_ids.as_slice().iter().enumerate() {
            ids[gp.offset + local] = id + shift;
        }
        floor = floor.max(part_ids.max_id() + shift);
    }
    // Fresh identities for the inserted nodes.
    let mut next = floor + 1;
    for idx in originals..gluing.graph.node_count() {
        ids[idx] = next;
        next += 1;
    }
    IdAssignment::new(ids)
}

/// Subdivides the edge `{u, v}` once, returning the new graph and the index
/// of the inserted node. General-purpose helper (the gluing uses its own
/// inline double subdivision).
pub fn subdivide_edge(graph: &Graph, u: NodeId, v: NodeId) -> (Graph, NodeId) {
    assert!(graph.has_edge(u, v), "({u}, {v}) is not an edge");
    let n = graph.node_count();
    let mut b = GraphBuilder::new(n + 1);
    for (a, c) in graph.edges() {
        if (a == u && c == v) || (a == v && c == u) {
            continue;
        }
        b.add_edge(a.index(), c.index());
    }
    b.add_edge(u.index(), n);
    b.add_edge(n, v.index());
    (b.build(), NodeId::from_index(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{cycle, path};
    use crate::traversal::{component_count, distance, is_connected};

    #[test]
    fn disjoint_union_preserves_parts() {
        let a = cycle(5);
        let b = path(4);
        let u = disjoint_union(&[&a, &b]);
        assert_eq!(u.graph.node_count(), 9);
        assert_eq!(u.graph.edge_count(), 5 + 3);
        assert_eq!(component_count(&u.graph), 2);
        assert_eq!(u.map(1, NodeId(0)), NodeId(5));
        assert_eq!(u.part_of(NodeId(7)), (1, NodeId(2)));
        assert_eq!(u.part_of(NodeId(4)), (0, NodeId(4)));
    }

    #[test]
    fn concatenate_ids_produces_disjoint_ranges() {
        let a = cycle(4);
        let ids_a = IdAssignment::consecutive(&a);
        let ids_b = IdAssignment::consecutive(&a);
        let merged = concatenate_ids(&[&ids_a, &ids_b]);
        assert_eq!(merged.len(), 8);
        assert_eq!(merged.max_id(), 8);
        assert_eq!(merged.min_id(), 1);
    }

    #[test]
    fn subdivide_edge_adds_a_degree_two_node() {
        let g = cycle(6);
        let (g2, mid) = subdivide_edge(&g, NodeId(0), NodeId(1));
        assert_eq!(g2.node_count(), 7);
        assert_eq!(g2.edge_count(), 7);
        assert_eq!(g2.degree(mid), 2);
        assert!(!g2.has_edge(NodeId(0), NodeId(1)));
        assert!(is_connected(&g2));
    }

    #[test]
    fn gluing_two_cycles_is_connected_and_degree_bounded() {
        let h1 = cycle(10);
        let h2 = cycle(12);
        let glue = glue_instances(&[(&h1, NodeId(0)), (&h2, NodeId(3))]);
        let g = &glue.graph;
        assert_eq!(g.node_count(), 10 + 12 + 4);
        assert!(is_connected(g));
        // Cycles have max degree 2; subdivision nodes gain one ring edge,
        // giving max degree 3 = k for k > 2.
        assert!(g.max_degree() <= 3);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn gluing_preserves_distances_inside_parts_away_from_anchor() {
        // Distances between nodes of the same part that avoid the anchor
        // region are unchanged by the gluing.
        let h = cycle(16);
        let glue = glue_instances(&[(&h, NodeId(0)), (&h, NodeId(0))]);
        let d_orig = distance(&h, NodeId(4), NodeId(8)).unwrap();
        let d_glued = distance(
            &glue.graph,
            glue.map(0, NodeId(4)),
            glue.map(0, NodeId(8)),
        )
        .unwrap();
        assert_eq!(d_orig, d_glued);
    }

    #[test]
    fn gluing_origin_maps_back() {
        let h1 = cycle(6);
        let h2 = path(5);
        let glue = glue_instances(&[(&h1, NodeId(2)), (&h2, NodeId(1))]);
        assert_eq!(glue.origin(glue.map(0, NodeId(3))), Some((0, NodeId(3))));
        assert_eq!(glue.origin(glue.map(1, NodeId(4))), Some((1, NodeId(4))));
        assert_eq!(glue.origin(glue.parts[0].sub_v), None);
        assert_eq!(glue.origin(glue.parts[1].sub_w), None);
    }

    #[test]
    fn gluing_many_parts_forms_single_component() {
        let parts: Vec<Graph> = (0..5).map(|i| cycle(8 + i)).collect();
        let with_anchors: Vec<(&Graph, NodeId)> =
            parts.iter().map(|g| (g, NodeId(0))).collect();
        let glue = glue_instances(&with_anchors);
        assert!(is_connected(&glue.graph));
        assert_eq!(component_count(&glue.graph), 1);
        assert!(glue.graph.max_degree() <= 3);
    }

    #[test]
    fn glued_ids_are_distinct_and_cover_inserted_nodes() {
        let h1 = cycle(6);
        let h2 = cycle(7);
        let glue = glue_instances(&[(&h1, NodeId(0)), (&h2, NodeId(0))]);
        let ids1 = IdAssignment::consecutive(&h1);
        let ids2 = IdAssignment::consecutive(&h2);
        let merged = glued_ids(&glue, &[&ids1, &ids2]);
        assert_eq!(merged.len(), glue.graph.node_count());
        // All distinct is checked by the IdAssignment constructor; also make
        // sure part 2's identities sit above part 1's.
        let max_p1 = (0..6).map(|i| merged.id(glue.map(0, NodeId(i)))).max().unwrap();
        let min_p2 = (0..7).map(|i| merged.id(glue.map(1, NodeId(i)))).min().unwrap();
        assert!(min_p2 > max_p1);
    }

    #[test]
    #[should_panic(expected = "at least two instances")]
    fn gluing_requires_two_parts() {
        let h = cycle(5);
        let _ = glue_instances(&[(&h, NodeId(0))]);
    }
}

//! Mutable adjacency-list builder producing validated [`Graph`]s.

use crate::csr::{Graph, NodeId};

/// Incrementally builds a simple undirected graph.
///
/// Duplicate edge insertions and self-loops are tolerated at insertion time
/// and removed/rejected when [`GraphBuilder::build`] canonicalizes the
/// adjacency into CSR form, so generators can be written without worrying
/// about double-adding edges.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    adjacency: Vec<Vec<u32>>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            adjacency: vec![Vec::new(); n],
        }
    }

    /// Number of nodes currently in the builder.
    pub fn node_count(&self) -> usize {
        self.adjacency.len()
    }

    /// Appends a fresh isolated node and returns its index.
    pub fn add_node(&mut self) -> NodeId {
        self.adjacency.push(Vec::new());
        NodeId::from_index(self.adjacency.len() - 1)
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// Self-loops are ignored. Duplicate insertions are deduplicated at
    /// build time.
    ///
    /// # Panics
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, u: impl Into<NodeId>, v: impl Into<NodeId>) {
        let (u, v) = (u.into(), v.into());
        assert!(
            u.index() < self.adjacency.len() && v.index() < self.adjacency.len(),
            "edge ({u}, {v}) out of range for {} nodes",
            self.adjacency.len()
        );
        if u == v {
            return;
        }
        self.adjacency[u.index()].push(v.0);
        self.adjacency[v.index()].push(u.0);
    }

    /// Removes the undirected edge `{u, v}` if present.
    pub fn remove_edge(&mut self, u: impl Into<NodeId>, v: impl Into<NodeId>) {
        let (u, v) = (u.into(), v.into());
        self.adjacency[u.index()].retain(|&w| w != v.0);
        self.adjacency[v.index()].retain(|&w| w != u.0);
    }

    /// Returns `true` if the undirected edge `{u, v}` has been added.
    pub fn has_edge(&self, u: impl Into<NodeId>, v: impl Into<NodeId>) -> bool {
        let (u, v) = (u.into(), v.into());
        self.adjacency[u.index()].contains(&v.0)
    }

    /// Current degree of `v` (counting duplicates not yet deduplicated).
    pub fn degree(&self, v: impl Into<NodeId>) -> usize {
        self.adjacency[v.into().index()].len()
    }

    /// Canonicalizes into an immutable CSR [`Graph`]: sorts and deduplicates
    /// every neighbor list and lays them out contiguously.
    pub fn build(mut self) -> Graph {
        let n = self.adjacency.len();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        let mut total = 0usize;
        for list in &mut self.adjacency {
            list.sort_unstable();
            list.dedup();
            total += list.len();
            offsets.push(u32::try_from(total).expect("edge count exceeds u32::MAX"));
        }
        let mut neighbors = Vec::with_capacity(total);
        for list in &self.adjacency {
            neighbors.extend_from_slice(list);
        }
        let g = Graph::from_csr(offsets, neighbors);
        debug_assert!(g.validate().is_ok());
        g
    }

    /// Builds a graph from an explicit edge list on `n` nodes.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Graph {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_and_self_loops_are_dropped() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(0, 1);
        b.add_edge(2, 2);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(NodeId(2)), 0);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn add_and_remove_edges() {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        assert!(b.has_edge(0, 1));
        b.remove_edge(0, 1);
        assert!(!b.has_edge(0, 1));
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn add_node_grows_graph() {
        let mut b = GraphBuilder::new(1);
        let v = b.add_node();
        assert_eq!(v, NodeId(1));
        b.add_edge(0, v);
        let g = b.build();
        assert_eq!(g.node_count(), 2);
        assert!(g.has_edge(NodeId(0), NodeId(1)));
    }

    #[test]
    fn from_edges_builds_expected_graph() {
        let g = GraphBuilder::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 5);
    }
}

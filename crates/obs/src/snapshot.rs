//! Value-typed snapshots of the registry and their deterministic JSON
//! form.
//!
//! A [`MetricsSnapshot`] is a sorted `name → value` map detached from the
//! live atomics; two snapshots [`merge`](MetricsSnapshot::merge)
//! commutatively and associatively, which is what makes shard-local
//! registries combinable in any order (property-tested against the exact
//! JSON layer in `rlnc-experiments`). A [`TraceDocument`] pairs the
//! deterministic and timing sections and emits the `rlnc-trace-v1` JSON
//! schema.

use std::collections::BTreeMap;

/// One aggregated metric value, detached from the live registry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotonic event count.
    Counter(u64),
    /// Max-watermark gauge.
    Gauge(u64),
    /// Fixed-bucket histogram; `counts.len() == bounds.len() + 1` (the
    /// last bucket is the overflow bucket) and `sum` totals the observed
    /// values.
    Histogram {
        /// Bucket upper bounds, strictly increasing.
        bounds: Vec<u64>,
        /// Per-bucket observation counts plus the trailing overflow bucket.
        counts: Vec<u64>,
        /// Total of all observed values.
        sum: u64,
    },
    /// Wall-clock span statistics (always in the timing section).
    Span {
        /// Number of completed spans.
        calls: u64,
        /// Total nanoseconds across all calls.
        total_ns: u64,
        /// Fastest call (0 when `calls == 0`).
        min_ns: u64,
        /// Slowest call.
        max_ns: u64,
    },
}

/// A sorted `name → value` map — one section of a [`TraceDocument`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    entries: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or replaces) a metric value.
    pub fn insert(&mut self, name: impl Into<String>, value: MetricValue) {
        self.entries.insert(name.into(), value);
    }

    /// Looks up a metric by name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.get(name)
    }

    /// Number of metrics in the snapshot.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates the metrics in sorted name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Merges `other` into `self`. Counters add, gauges take the max,
    /// histograms add bucket-wise (bounds must agree), spans combine
    /// calls/total/min/max. Commutative and associative, so shard-local
    /// snapshots merged in any order yield the same result; mixing metric
    /// kinds (or histogram layouts) under one name is an error.
    pub fn merge(&mut self, other: &MetricsSnapshot) -> Result<(), String> {
        for (name, incoming) in &other.entries {
            match self.entries.get_mut(name) {
                None => {
                    self.entries.insert(name.clone(), incoming.clone());
                }
                Some(existing) => match (existing, incoming) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => {
                        *a = a.saturating_add(*b);
                    }
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => {
                        *a = (*a).max(*b);
                    }
                    (
                        MetricValue::Histogram {
                            bounds: ab,
                            counts: ac,
                            sum: asum,
                        },
                        MetricValue::Histogram {
                            bounds: bb,
                            counts: bc,
                            sum: bsum,
                        },
                    ) => {
                        if ab != bb {
                            return Err(format!(
                                "histogram '{name}': mismatched bucket bounds"
                            ));
                        }
                        for (a, b) in ac.iter_mut().zip(bc.iter()) {
                            *a = a.saturating_add(*b);
                        }
                        *asum = asum.saturating_add(*bsum);
                    }
                    (
                        MetricValue::Span {
                            calls: ac,
                            total_ns: at,
                            min_ns: amin,
                            max_ns: amax,
                        },
                        MetricValue::Span {
                            calls: bc,
                            total_ns: bt,
                            min_ns: bmin,
                            max_ns: bmax,
                        },
                    ) => {
                        // An empty side must not drag the min to 0.
                        *amin = match (*ac, *bc) {
                            (0, _) => *bmin,
                            (_, 0) => *amin,
                            _ => (*amin).min(*bmin),
                        };
                        *ac = ac.saturating_add(*bc);
                        *at = at.saturating_add(*bt);
                        *amax = (*amax).max(*bmax);
                    }
                    _ => {
                        return Err(format!("metric '{name}': mismatched kinds in merge"));
                    }
                },
            }
        }
        Ok(())
    }

    /// Emits the snapshot as a JSON object (sorted keys, exact integers).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(&escape_json(name));
            out.push_str("\":");
            out.push_str(&value_json(value));
        }
        out.push('}');
        out
    }
}

fn u64_list(values: &[u64]) -> String {
    let mut out = String::from("[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
    out
}

fn value_json(value: &MetricValue) -> String {
    match value {
        MetricValue::Counter(v) => format!("{{\"type\":\"counter\",\"value\":{v}}}"),
        MetricValue::Gauge(v) => format!("{{\"type\":\"gauge\",\"value\":{v}}}"),
        MetricValue::Histogram { bounds, counts, sum } => format!(
            "{{\"type\":\"histogram\",\"bounds\":{},\"counts\":{},\"sum\":{sum}}}",
            u64_list(bounds),
            u64_list(counts),
        ),
        MetricValue::Span {
            calls,
            total_ns,
            min_ns,
            max_ns,
        } => format!(
            "{{\"type\":\"span\",\"calls\":{calls},\"total_ns\":{total_ns},\"min_ns\":{min_ns},\"max_ns\":{max_ns}}}"
        ),
    }
}

/// JSON string escaping, byte-compatible with the exact-JSON emitters in
/// `rlnc-sweep` (quotes, backslashes, named control escapes, `\u00xx` for
/// the rest of the control range; everything else raw UTF-8).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The aggregated trace export: the deterministic section (byte-identical
/// across thread schedules and batch sizes) and the timing section
/// (wall-clock spans and schedule-dependent counts).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceDocument {
    /// Schedule-invariant metrics — the half covered by determinism pins.
    pub deterministic: MetricsSnapshot,
    /// Wall-clock and schedule-dependent metrics — excluded from
    /// determinism checks.
    pub timing: MetricsSnapshot,
}

impl TraceDocument {
    /// The schema tag emitted by [`TraceDocument::to_json`].
    pub const SCHEMA: &'static str = "rlnc-trace-v1";

    /// Emits the full trace document (schema tag + both sections).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema\":\"{}\",\"deterministic\":{},\"timing\":{}}}",
            Self::SCHEMA,
            self.deterministic.to_json(),
            self.timing.to_json(),
        )
    }

    /// Emits only the deterministic section — the byte string the
    /// determinism pin tests compare across executor variants.
    pub fn deterministic_json(&self) -> String {
        self.deterministic.to_json()
    }

    /// Merges `other` into `self`, section-wise (see
    /// [`MetricsSnapshot::merge`]). Commutative and associative, so the
    /// per-shard traces of a partitioned sweep (`sweep --shard i/N
    /// --trace-out ...`) combine in any order into one document covering
    /// the whole run. Note the *combined* totals, not the single-process
    /// bytes: counters like `sweep.runs` sum to N (one process each), so a
    /// merged trace is the shard aggregate, not a byte-pinned replay.
    pub fn merge(&mut self, other: &TraceDocument) -> Result<(), String> {
        self.deterministic.merge(&other.deterministic)?;
        self.timing.merge(&other.timing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MetricsSnapshot {
        let mut s = MetricsSnapshot::new();
        s.insert("b.counter", MetricValue::Counter(7));
        s.insert("a.gauge", MetricValue::Gauge(32));
        s.insert(
            "c.hist",
            MetricValue::Histogram {
                bounds: vec![1, 2, 4],
                counts: vec![1, 0, 2, 1],
                sum: 19,
            },
        );
        s
    }

    #[test]
    fn json_is_sorted_and_exact() {
        let json = sample().to_json();
        assert_eq!(
            json,
            concat!(
                "{\"a.gauge\":{\"type\":\"gauge\",\"value\":32},",
                "\"b.counter\":{\"type\":\"counter\",\"value\":7},",
                "\"c.hist\":{\"type\":\"histogram\",\"bounds\":[1,2,4],",
                "\"counts\":[1,0,2,1],\"sum\":19}}"
            )
        );
    }

    #[test]
    fn merge_is_commutative_on_sample() {
        let mut left = sample();
        let mut extra = MetricsSnapshot::new();
        extra.insert("b.counter", MetricValue::Counter(3));
        extra.insert("a.gauge", MetricValue::Gauge(8));
        extra.insert("d.new", MetricValue::Counter(1));

        let mut right = extra.clone();
        left.merge(&extra).unwrap();
        right.merge(&sample()).unwrap();
        assert_eq!(left, right);
        assert_eq!(left.get("b.counter"), Some(&MetricValue::Counter(10)));
        assert_eq!(left.get("a.gauge"), Some(&MetricValue::Gauge(32)));
    }

    #[test]
    fn merge_rejects_mismatches() {
        let mut a = MetricsSnapshot::new();
        a.insert("x", MetricValue::Counter(1));
        let mut b = MetricsSnapshot::new();
        b.insert("x", MetricValue::Gauge(1));
        assert!(a.merge(&b).is_err());

        let mut h1 = MetricsSnapshot::new();
        h1.insert(
            "h",
            MetricValue::Histogram {
                bounds: vec![1, 2],
                counts: vec![0, 0, 0],
                sum: 0,
            },
        );
        let mut h2 = MetricsSnapshot::new();
        h2.insert(
            "h",
            MetricValue::Histogram {
                bounds: vec![1, 4],
                counts: vec![0, 0, 0],
                sum: 0,
            },
        );
        assert!(h1.merge(&h2).is_err());
    }

    #[test]
    fn span_merge_handles_empty_sides() {
        let mut a = MetricsSnapshot::new();
        a.insert(
            "s",
            MetricValue::Span {
                calls: 0,
                total_ns: 0,
                min_ns: 0,
                max_ns: 0,
            },
        );
        let mut b = MetricsSnapshot::new();
        b.insert(
            "s",
            MetricValue::Span {
                calls: 2,
                total_ns: 300,
                min_ns: 100,
                max_ns: 200,
            },
        );
        a.merge(&b).unwrap();
        assert_eq!(
            a.get("s"),
            Some(&MetricValue::Span {
                calls: 2,
                total_ns: 300,
                min_ns: 100,
                max_ns: 200
            })
        );
    }

    #[test]
    fn trace_document_wraps_both_sections() {
        let doc = TraceDocument {
            deterministic: sample(),
            timing: MetricsSnapshot::new(),
        };
        let json = doc.to_json();
        assert!(json.starts_with("{\"schema\":\"rlnc-trace-v1\",\"deterministic\":{"));
        assert!(json.ends_with("\"timing\":{}}"));
        assert_eq!(doc.deterministic_json(), sample().to_json());
    }

    #[test]
    fn trace_document_merge_is_sectionwise() {
        let mut a = TraceDocument {
            deterministic: sample(),
            timing: MetricsSnapshot::new(),
        };
        let mut timing = MetricsSnapshot::new();
        timing.insert(
            "t.span",
            MetricValue::Span {
                calls: 1,
                total_ns: 5,
                min_ns: 5,
                max_ns: 5,
            },
        );
        let b = TraceDocument {
            deterministic: sample(),
            timing,
        };
        a.merge(&b).unwrap();
        assert_eq!(a.deterministic.get("b.counter"), Some(&MetricValue::Counter(14)));
        assert!(a.timing.get("t.span").is_some());
        // Section-kind mismatches surface as errors, not silent drops.
        let mut bad = TraceDocument::default();
        bad.deterministic.insert("b.counter", MetricValue::Gauge(1));
        assert!(a.merge(&bad).is_err());
    }

    #[test]
    fn escaping_covers_quotes_and_controls() {
        let mut s = MetricsSnapshot::new();
        s.insert("weird\"\\\n\u{1}", MetricValue::Counter(1));
        let json = s.to_json();
        assert!(json.contains("weird\\\"\\\\\\n\\u0001"));
    }
}

//! The process-global metric registry and its hot-path handles.
//!
//! Cells are interned once per metric name and leaked (`Box::leak`), so a
//! handle is a `Copy` reference to a `'static` atomic — the enabled hot
//! path is a single `fetch_add` with no locking and no allocation. The
//! registry mutex is only taken at interning and snapshot time.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::snapshot::{MetricValue, MetricsSnapshot, TraceDocument};

/// Which half of the trace export a metric belongs to.
///
/// See the crate docs for the full contract; in short: if the value is a
/// function of *what work was done* it is [`Section::Deterministic`], if
/// it depends on wall clock, core count, batch size, or thread schedule it
/// is [`Section::Timing`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Section {
    /// Byte-identical across thread schedules and batch sizes.
    Deterministic,
    /// Wall-clock and schedule-dependent; excluded from determinism checks.
    Timing,
}

/// Power-of-two histogram bounds `1, 2, 4, …, 2^20` — the shared bucket
/// layout for size-like observations (ball members, CSR edges, messages
/// per round). The last implicit bucket catches everything above `2^20`.
pub const POW2_BUCKETS: [u64; 21] = [
    1,
    2,
    4,
    8,
    16,
    32,
    64,
    128,
    256,
    512,
    1024,
    2048,
    4096,
    8192,
    16384,
    32768,
    65536,
    131072,
    262144,
    524288,
    1048576,
];

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
    Span,
}

enum Data {
    Counter(AtomicU64),
    Gauge(AtomicU64),
    Histogram {
        bounds: &'static [u64],
        counts: Box<[AtomicU64]>,
        sum: AtomicU64,
    },
    Span {
        calls: AtomicU64,
        total_ns: AtomicU64,
        min_ns: AtomicU64,
        max_ns: AtomicU64,
    },
}

struct Cell {
    name: &'static str,
    section: Section,
    kind: Kind,
    data: Data,
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn cells() -> &'static Mutex<HashMap<&'static str, &'static Cell>> {
    static CELLS: OnceLock<Mutex<HashMap<&'static str, &'static Cell>>> = OnceLock::new();
    CELLS.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Whether metric collection is on. Every sink checks this first (one
/// relaxed load), so disabled instrumentation compiles to near-nothing.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns metric collection on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

fn intern(name: &'static str, section: Section, kind: Kind, make: impl FnOnce() -> Data) -> &'static Cell {
    let mut map = cells().lock().expect("obs registry poisoned");
    if let Some(cell) = map.get(name) {
        assert!(
            cell.kind == kind && cell.section == section,
            "metric '{name}' re-registered as {kind:?}/{section:?} but exists as {:?}/{:?}",
            cell.kind,
            cell.section,
        );
        return cell;
    }
    let cell: &'static Cell = Box::leak(Box::new(Cell {
        name,
        section,
        kind,
        data: make(),
    }));
    map.insert(name, cell);
    cell
}

/// A monotonically increasing event count.
#[derive(Clone, Copy)]
pub struct Counter(&'static Cell);

impl Counter {
    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Data::Counter(v) = &self.0.data {
            v.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one to the counter.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        match &self.0.data {
            Data::Counter(v) => v.load(Ordering::Relaxed),
            _ => 0,
        }
    }
}

/// Resolves (interning on first use) the counter `name`.
pub fn counter(name: &'static str, section: Section) -> Counter {
    Counter(intern(name, section, Kind::Counter, || {
        Data::Counter(AtomicU64::new(0))
    }))
}

/// A max-watermark gauge: `record_max` keeps the largest observed value.
/// The max over a fixed set of observations is order-independent, which is
/// what keeps byte-size gauges eligible for the deterministic section.
#[derive(Clone, Copy)]
pub struct Gauge(&'static Cell);

impl Gauge {
    /// Raises the watermark to `v` if `v` is larger.
    #[inline]
    pub fn record_max(&self, v: u64) {
        if let Data::Gauge(g) = &self.0.data {
            g.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current watermark.
    pub fn get(&self) -> u64 {
        match &self.0.data {
            Data::Gauge(g) => g.load(Ordering::Relaxed),
            _ => 0,
        }
    }
}

/// Resolves (interning on first use) the gauge `name`.
pub fn gauge(name: &'static str, section: Section) -> Gauge {
    Gauge(intern(name, section, Kind::Gauge, || {
        Data::Gauge(AtomicU64::new(0))
    }))
}

/// A fixed-bucket histogram. Bucket `i` counts observations `v` with
/// `bounds[i-1] < v <= bounds[i]`; one extra overflow bucket counts
/// everything above the last bound.
#[derive(Clone, Copy)]
pub struct Histogram(&'static Cell);

impl Histogram {
    /// Records one observation of `v`.
    #[inline]
    pub fn observe(&self, v: u64) {
        if let Data::Histogram { bounds, counts, sum } = &self.0.data {
            let idx = bounds.partition_point(|&b| b < v);
            counts[idx].fetch_add(1, Ordering::Relaxed);
            sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Total of all observed values.
    pub fn sum(&self) -> u64 {
        match &self.0.data {
            Data::Histogram { sum, .. } => sum.load(Ordering::Relaxed),
            _ => 0,
        }
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        match &self.0.data {
            Data::Histogram { counts, .. } => {
                counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
            }
            _ => 0,
        }
    }
}

/// Resolves (interning on first use) the histogram `name` with the given
/// bucket upper bounds (must be strictly increasing; typically
/// [`POW2_BUCKETS`]).
pub fn histogram(name: &'static str, section: Section, bounds: &'static [u64]) -> Histogram {
    let cell = intern(name, section, Kind::Histogram, || Data::Histogram {
        bounds,
        counts: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
        sum: AtomicU64::new(0),
    });
    if let Data::Histogram { bounds: existing, .. } = &cell.data {
        assert_eq!(
            *existing, bounds,
            "histogram '{name}' re-registered with different bucket bounds"
        );
    }
    Histogram(cell)
}

/// Records one completed span of `ns` nanoseconds under `name`. Spans are
/// always [`Section::Timing`].
pub fn record_span(name: &'static str, ns: u64) {
    let cell = intern(name, Section::Timing, Kind::Span, || Data::Span {
        calls: AtomicU64::new(0),
        total_ns: AtomicU64::new(0),
        min_ns: AtomicU64::new(u64::MAX),
        max_ns: AtomicU64::new(0),
    });
    if let Data::Span {
        calls,
        total_ns,
        min_ns,
        max_ns,
    } = &cell.data
    {
        calls.fetch_add(1, Ordering::Relaxed);
        total_ns.fetch_add(ns, Ordering::Relaxed);
        min_ns.fetch_min(ns, Ordering::Relaxed);
        max_ns.fetch_max(ns, Ordering::Relaxed);
    }
}

/// RAII wall-clock timer returned by [`LazySpan::start`]; records into the
/// registry on drop. Inert (and allocation-free) when collection is off.
pub struct SpanGuard {
    inner: Option<(&'static str, Instant)>,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((name, start)) = self.inner.take() {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            record_span(name, ns);
        }
    }
}

/// A `const`-constructible static handle for a counter: resolves its
/// registry cell on first enabled use, then the hot path is one relaxed
/// load + one `fetch_add`.
pub struct LazyCounter {
    name: &'static str,
    section: Section,
    cell: OnceLock<Counter>,
}

impl LazyCounter {
    /// Declares the counter (no registration happens until first use).
    pub const fn new(name: &'static str, section: Section) -> Self {
        Self {
            name,
            section,
            cell: OnceLock::new(),
        }
    }

    /// Adds `n` if collection is enabled; near-free otherwise.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.handle().add(n);
        }
    }

    /// Adds one if collection is enabled; near-free otherwise.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The resolved registry handle (interning on first call).
    pub fn handle(&self) -> Counter {
        *self
            .cell
            .get_or_init(|| counter(self.name, self.section))
    }
}

/// A `const`-constructible static handle for a max-watermark gauge.
pub struct LazyGauge {
    name: &'static str,
    section: Section,
    cell: OnceLock<Gauge>,
}

impl LazyGauge {
    /// Declares the gauge (no registration happens until first use).
    pub const fn new(name: &'static str, section: Section) -> Self {
        Self {
            name,
            section,
            cell: OnceLock::new(),
        }
    }

    /// Raises the watermark if collection is enabled; near-free otherwise.
    #[inline]
    pub fn record_max(&self, v: u64) {
        if enabled() {
            self.handle().record_max(v);
        }
    }

    /// The resolved registry handle (interning on first call).
    pub fn handle(&self) -> Gauge {
        *self.cell.get_or_init(|| gauge(self.name, self.section))
    }
}

/// A `const`-constructible static handle for a fixed-bucket histogram.
pub struct LazyHistogram {
    name: &'static str,
    section: Section,
    bounds: &'static [u64],
    cell: OnceLock<Histogram>,
}

impl LazyHistogram {
    /// Declares the histogram (no registration happens until first use).
    pub const fn new(name: &'static str, section: Section, bounds: &'static [u64]) -> Self {
        Self {
            name,
            section,
            bounds,
            cell: OnceLock::new(),
        }
    }

    /// Records one observation if collection is enabled; near-free
    /// otherwise.
    #[inline]
    pub fn observe(&self, v: u64) {
        if enabled() {
            self.handle().observe(v);
        }
    }

    /// The resolved registry handle (interning on first call).
    pub fn handle(&self) -> Histogram {
        *self
            .cell
            .get_or_init(|| histogram(self.name, self.section, self.bounds))
    }
}

/// A `const`-constructible static handle for a wall-clock span (always
/// [`Section::Timing`]).
pub struct LazySpan {
    name: &'static str,
}

impl LazySpan {
    /// Declares the span.
    pub const fn new(name: &'static str) -> Self {
        Self { name }
    }

    /// Starts timing; the returned guard records on drop. Inert when
    /// collection is off.
    #[inline]
    pub fn start(&self) -> SpanGuard {
        SpanGuard {
            inner: enabled().then(|| (self.name, Instant::now())),
        }
    }
}

/// Zeroes every registered metric (registrations are kept). Used between
/// executor variants by the determinism pin tests and between runs that
/// share a process.
pub fn reset() {
    let map = cells().lock().expect("obs registry poisoned");
    for cell in map.values() {
        match &cell.data {
            Data::Counter(v) => v.store(0, Ordering::Relaxed),
            Data::Gauge(g) => g.store(0, Ordering::Relaxed),
            Data::Histogram { counts, sum, .. } => {
                for c in counts.iter() {
                    c.store(0, Ordering::Relaxed);
                }
                sum.store(0, Ordering::Relaxed);
            }
            Data::Span {
                calls,
                total_ns,
                min_ns,
                max_ns,
            } => {
                calls.store(0, Ordering::Relaxed);
                total_ns.store(0, Ordering::Relaxed);
                min_ns.store(u64::MAX, Ordering::Relaxed);
                max_ns.store(0, Ordering::Relaxed);
            }
        }
    }
}

/// Walks the registry into a [`TraceDocument`]: every *touched* metric,
/// split by [`Section`], with names sorted inside each section.
///
/// Metrics still at their reset-state default (zero counter/gauge, empty
/// histogram, zero-call span) are omitted: lazy handles stay registered
/// across [`reset`], so including them would make a snapshot depend on
/// which code paths ever ran in the process, not on the work done since
/// the last reset — breaking the deterministic-section byte pins across
/// warm reruns.
pub fn snapshot() -> TraceDocument {
    let map = cells().lock().expect("obs registry poisoned");
    let mut deterministic = MetricsSnapshot::new();
    let mut timing = MetricsSnapshot::new();
    for cell in map.values() {
        let value = match &cell.data {
            Data::Counter(v) => match v.load(Ordering::Relaxed) {
                0 => continue,
                n => MetricValue::Counter(n),
            },
            Data::Gauge(g) => match g.load(Ordering::Relaxed) {
                0 => continue,
                n => MetricValue::Gauge(n),
            },
            Data::Histogram { bounds, counts, sum } => {
                let counts: Vec<u64> =
                    counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
                let sum = sum.load(Ordering::Relaxed);
                if counts.iter().all(|&c| c == 0) && sum == 0 {
                    continue;
                }
                MetricValue::Histogram {
                    bounds: bounds.to_vec(),
                    counts,
                    sum,
                }
            }
            Data::Span {
                calls,
                total_ns,
                min_ns,
                max_ns,
            } => {
                let n = calls.load(Ordering::Relaxed);
                if n == 0 {
                    continue;
                }
                MetricValue::Span {
                    calls: n,
                    total_ns: total_ns.load(Ordering::Relaxed),
                    min_ns: min_ns.load(Ordering::Relaxed),
                    max_ns: max_ns.load(Ordering::Relaxed),
                }
            }
        };
        match cell.section {
            Section::Deterministic => deterministic.insert(cell.name, value),
            Section::Timing => timing.insert(cell.name, value),
        }
    }
    TraceDocument {
        deterministic,
        timing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Metric names are unique per test so tests may run concurrently
    // against the process-global registry.

    #[test]
    fn disabled_sinks_are_inert() {
        let c = LazyCounter::new("test.registry.disabled", Section::Deterministic);
        // Collection defaults to off in this process unless another test
        // enabled it; force the off state locally via the handle path.
        if !enabled() {
            c.add(5);
            // Nothing interned: the handle was never resolved.
            assert!(c.cell.get().is_none());
        }
        // Resolved handles still work regardless of the flag.
        let h = c.handle();
        h.add(2);
        assert_eq!(h.get(), 2);
    }

    #[test]
    fn counters_gauges_histograms_accumulate() {
        let c = counter("test.registry.counter", Section::Deterministic);
        c.add(3);
        c.inc();
        assert_eq!(c.get(), 4);

        let g = gauge("test.registry.gauge", Section::Deterministic);
        g.record_max(10);
        g.record_max(7);
        assert_eq!(g.get(), 10);

        let h = histogram("test.registry.hist", Section::Deterministic, &POW2_BUCKETS);
        h.observe(1); // bucket 0 (<= 1)
        h.observe(3); // bucket 2 (<= 4)
        h.observe(2_000_000); // overflow bucket
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 2_000_004);
    }

    #[test]
    fn interning_is_idempotent_and_checked() {
        let a = counter("test.registry.idem", Section::Timing);
        let b = counter("test.registry.idem", Section::Timing);
        a.add(1);
        b.add(1);
        assert_eq!(a.get(), 2);
    }

    #[test]
    fn spans_record_call_stats() {
        record_span("test.registry.span", 100);
        record_span("test.registry.span", 300);
        let doc = snapshot();
        let got = doc.timing.get("test.registry.span").cloned();
        match got {
            Some(MetricValue::Span {
                calls,
                total_ns,
                min_ns,
                max_ns,
            }) => {
                assert!(calls >= 2);
                assert!(total_ns >= 400);
                assert!(min_ns <= 100);
                assert!(max_ns >= 300);
            }
            other => panic!("expected span, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_sections_split_by_registration() {
        counter("test.registry.det_side", Section::Deterministic).inc();
        counter("test.registry.timing_side", Section::Timing).inc();
        let doc = snapshot();
        assert!(doc.deterministic.get("test.registry.det_side").is_some());
        assert!(doc.deterministic.get("test.registry.timing_side").is_none());
        assert!(doc.timing.get("test.registry.timing_side").is_some());
    }
}

//! # rlnc-obs — the deterministic observability spine
//!
//! A zero-dependency, thread-safe metrics/tracing registry: atomic
//! counters, max-watermark gauges, fixed-bucket histograms, and
//! lightweight wall-clock spans, shared by every layer of the workspace
//! (arena → plan → runner → rounds → sweep → CLI).
//!
//! ## The determinism contract
//!
//! The rest of the repo lives by bit-reproducibility — the same seed tree
//! yields byte-identical exports across thread schedules and batch sizes —
//! and the observability layer inherits that contract. Every metric is
//! registered under one of two sections:
//!
//! * [`Section::Deterministic`] — counts, bytes, cardinalities. These are
//!   functions of *what work was done*, never of *how it was scheduled*:
//!   trials executed, balls extracted, messages delivered, faults
//!   materialized. The aggregated deterministic section is byte-identical
//!   across thread schedules and batch sizes (pinned by
//!   `trace_determinism` in `rlnc-sweep`).
//! * [`Section::Timing`] — wall-clock spans and anything
//!   schedule-dependent: blocked-pass counts (a function of batch size),
//!   parallel-vs-sequential dispatch decisions (a function of core count
//!   and nesting), scoped-thread spawn counts from the vendored rayon
//!   stub. Excluded from all determinism checks.
//!
//! ## Cost model
//!
//! Collection is **off by default**. Every sink first performs one relaxed
//! atomic load ([`enabled`]) and branches away — a disabled counter in a
//! hot loop costs a couple of instructions and never allocates, which is
//! asserted under the counting allocator (the `alloc_counter` module,
//! promoted here from `rlnc-experiments`, behind the `count-alloc`
//! feature). When enabled, each site resolves its registry cell once
//! through a [`LazyCounter`]/[`LazyGauge`]/[`LazyHistogram`] static and
//! the hot path is a single `fetch_add` on a leaked atomic — still
//! allocation-free after first touch.
//!
//! ## Export
//!
//! [`snapshot`] walks the registry into a [`TraceDocument`] — two sorted
//! name→value maps ([`MetricsSnapshot`]) — whose [`TraceDocument::to_json`]
//! emission is exact and deterministic (sorted keys, integer-only values).
//! Shard-local snapshots merge commutatively and associatively
//! ([`MetricsSnapshot::merge`]): counters add, gauges take the max,
//! histograms add bucket-wise, spans combine count/total/min/max — so
//! merging registries in any order yields the same deterministic section
//! (property-tested in `rlnc-experiments`).

// The counting allocator needs one `unsafe impl GlobalAlloc`; everything
// else stays forbidden-unsafe, and without the feature the whole crate is.
#![cfg_attr(not(feature = "count-alloc"), forbid(unsafe_code))]
#![cfg_attr(feature = "count-alloc", deny(unsafe_code))]
#![warn(missing_docs)]

#[cfg(feature = "count-alloc")]
pub mod alloc_counter;
mod registry;
mod snapshot;

pub use registry::{
    counter, enabled, gauge, histogram, record_span, reset, set_enabled, snapshot, Counter, Gauge,
    Histogram, LazyCounter, LazyGauge, LazyHistogram, LazySpan, Section, SpanGuard, POW2_BUCKETS,
};
pub use snapshot::{MetricValue, MetricsSnapshot, TraceDocument};

//! A counting global allocator (behind the `count-alloc` feature): the
//! peak-allocation proxy of the perf trajectory, promoted here from
//! `rlnc-experiments::alloc_counter` so *any* crate's tests can assert
//! allocation-freedom (the engine equivalence suite and the experiments
//! harness both do).
//!
//! `BENCH_*.json` used to record wall time only, so memory-behavior
//! regressions were invisible until they dominated runtime. With this
//! feature enabled, every allocation through the global allocator bumps a
//! relaxed atomic counter and a live-bytes gauge (with a peak watermark),
//! letting `bench-export`:
//!
//! * record allocation counts per measured pass alongside nanoseconds, and
//! * **assert** the hot-loop acceptance criteria — view-native
//!   `is_bad_view` verdicts and instrumented engine kernels perform
//!   *zero* heap allocations (disabled obs sinks included).
//!
//! The counters use `Ordering::Relaxed`: they are statistics, not
//! synchronization, and the measured loops are single-threaded.

#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);
static CURRENT_BYTES: AtomicUsize = AtomicUsize::new(0);
static PEAK_BYTES: AtomicUsize = AtomicUsize::new(0);

/// The counting allocator: delegates to [`System`], counting on the way.
pub struct CountingAllocator;

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn record_alloc(size: usize) {
    ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
    let live = CURRENT_BYTES.fetch_add(size, Ordering::Relaxed) + size;
    PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            record_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        CURRENT_BYTES.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            // Count a grow/shrink as one allocation event and move the
            // live-bytes gauge by the delta.
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            if new_size >= layout.size() {
                let live =
                    CURRENT_BYTES.fetch_add(new_size - layout.size(), Ordering::Relaxed)
                        + (new_size - layout.size());
                PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
            } else {
                CURRENT_BYTES.fetch_sub(layout.size() - new_size, Ordering::Relaxed);
            }
        }
        new_ptr
    }
}

/// Total number of allocation events since process start.
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Live heap bytes currently tracked.
pub fn current_bytes() -> usize {
    CURRENT_BYTES.load(Ordering::Relaxed)
}

/// The high-water mark of live heap bytes — the peak-allocation proxy
/// recorded in `BENCH_*.json`.
pub fn peak_bytes() -> usize {
    PEAK_BYTES.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_counted() {
        let before = allocations();
        // black_box keeps release-mode LLVM from eliding the unused heap
        // allocation entirely (malloc elision is legal for dead allocs).
        let v: Vec<u64> = std::hint::black_box((0..1024).collect());
        assert!(allocations() > before, "a fresh Vec must be counted");
        assert!(peak_bytes() >= 1024 * 8);
        assert!(current_bytes() > 0);
        drop(std::hint::black_box(v));
    }

    #[test]
    fn disabled_obs_sinks_do_not_allocate() {
        use crate::{LazyCounter, LazyHistogram, Section, POW2_BUCKETS};

        static C: LazyCounter = LazyCounter::new("test.alloc.counter", Section::Deterministic);
        static H: LazyHistogram =
            LazyHistogram::new("test.alloc.hist", Section::Deterministic, &POW2_BUCKETS);

        assert!(!crate::enabled(), "count-alloc tests assume obs is off");
        let before = allocations();
        for i in 0..10_000u64 {
            C.add(i);
            H.observe(i);
        }
        assert_eq!(
            allocations() - before,
            0,
            "disabled sinks must be allocation-free"
        );
    }

    #[test]
    fn enabled_obs_sinks_do_not_allocate_after_interning() {
        use crate::{LazyCounter, LazyHistogram, Section, POW2_BUCKETS};

        static C: LazyCounter = LazyCounter::new("test.alloc.hot_counter", Section::Deterministic);
        static H: LazyHistogram =
            LazyHistogram::new("test.alloc.hot_hist", Section::Deterministic, &POW2_BUCKETS);

        // Interning allocates once (the leaked cell); the steady state
        // must not. Resolve the handles directly so the test holds whether
        // or not collection is globally enabled.
        let c = C.handle();
        let h = H.handle();
        c.add(1);
        h.observe(1);
        let before = allocations();
        for i in 0..10_000u64 {
            c.add(i);
            h.observe(i);
        }
        assert_eq!(
            allocations() - before,
            0,
            "resolved hot-path sinks must be allocation-free"
        );
    }
}

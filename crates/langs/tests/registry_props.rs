//! Property tests for the language registry's view-native verdicts: for
//! every registered LCL case, `LclLanguage::is_bad_view` (the overridden,
//! allocation-free hook) must match the `IoConfig` path bit-for-bit —
//! per node, across graph families, view radii (the language's own radius
//! and one beyond), constructor seeds, and identity schemes. This is the
//! contract that lets `ResilientDecider` / `OneSidedLclDecider` verdict
//! through the hook without changing a single coin flip.

use proptest::prelude::*;
use rlnc_core::config::{Instance, IoConfig};
use rlnc_core::language::is_bad_view_via_config;
use rlnc_core::view::View;
use rlnc_core::Simulator;
use rlnc_graph::generators::Family;
use rlnc_graph::IdAssignment;
use rlnc_langs::registry::CaseRegistry;
use rlnc_core::LclLanguage;
use rlnc_par::SeedSequence;

/// The connected regular families the pipeline scenarios sweep.
const FAMILIES: [Family; 3] = [Family::Cycle, Family::Circulant2, Family::Prism];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn view_native_verdicts_match_the_config_path(
        seed in 0u64..100_000,
        family_index in 0usize..3,
        n in 10usize..22,
        extra_radius in 0u32..2,
        spread_ids in 0u8..2,
    ) {
        for id in CaseRegistry::builtin().ids() {
            let case = id.case();
            let Some(lcl) = &case.lcl else { continue };
            let family = case.candidate_family(FAMILIES[family_index]);
            let mut rng = SeedSequence::new(seed).rng();
            let graph = family.generate(n, &mut rng);
            let ids = if spread_ids == 1 {
                IdAssignment::spread(&graph, 7)
            } else {
                IdAssignment::consecutive(&graph)
            };
            let input = case.build_input(&graph, &ids);
            let instance = Instance::new(&graph, &input, &ids);
            // A real output distribution: the case's own constructor.
            let output = Simulator::sequential().run_randomized(
                &*case.constructor,
                &instance,
                SeedSequence::new(seed).child(1),
            );
            let io = IoConfig::new(&graph, &input, &output);
            let radius = lcl.radius() + extra_radius;
            for v in graph.nodes() {
                let reference = lcl.is_bad_ball(&io, v);
                let view = View::collect_io(&io, &ids, v, radius);
                // (The vendored mini-proptest's assert macros take no
                // message; a failure prints the generated inputs.)
                prop_assert_eq!(lcl.is_bad_view(&view), reference);
                prop_assert_eq!(is_bad_view_via_config(&**lcl, &view), reference);
            }
        }
    }

    #[test]
    fn one_sided_decider_verdicts_are_unchanged_by_the_hook(
        seed in 0u64..100_000,
        n in 8usize..20,
    ) {
        // The decider-level consequence of the verdict equivalence: the
        // boxed case decider (which routes through is_bad_view) must agree,
        // per (configuration, coin seed), with deciding through a fresh
        // per-node IoConfig rebuild. Pinned here for the canonical
        // coloring case; the per-language equivalence above covers the
        // verdict function for all of them.
        use rlnc_core::decision::{decide_randomized, RandomizedDecider};
        use rlnc_core::OneSidedLclDecider;
        use rlnc_langs::coloring::ProperColoring;
        use rlnc_langs::random_coloring::RandomColoring;
        use rand::Rng;
        use rlnc_core::algorithm::Coins;

        let graph = rlnc_graph::generators::cycle(n);
        let ids = IdAssignment::consecutive(&graph);
        let input = rlnc_core::labels::Labeling::empty(n);
        let instance = Instance::new(&graph, &input, &ids);
        let output = Simulator::sequential().run_randomized(
            &RandomColoring::new(3),
            &instance,
            SeedSequence::new(seed).child(0),
        );
        let io = IoConfig::new(&graph, &input, &output);
        let decider = OneSidedLclDecider::new(ProperColoring::new(3), 0.7);
        let engine = decide_randomized(&decider, &io, &ids, SeedSequence::new(seed).child(1));
        // Reference: the pre-refactor decider body, coin-for-coin.
        let coins = Coins::new(SeedSequence::new(seed).child(1));
        let lang = ProperColoring::new(3);
        let reference = graph.nodes().all(|v| {
            let view = View::collect_io(&io, &ids, v, 1);
            let local_input = rlnc_core::labels::Labeling::new(
                (0..view.len()).map(|i| view.input(i).clone()).collect(),
            );
            let local_output = rlnc_core::labels::Labeling::new(
                (0..view.len()).map(|i| view.output(i).clone()).collect(),
            );
            let local_io = IoConfig::new(view.local_graph(), &local_input, &local_output);
            if !lang.is_bad_ball(&local_io, rlnc_graph::NodeId::from_index(view.center_local())) {
                true
            } else {
                !coins.for_center(&view).random_bool(0.7)
            }
        });
        prop_assert_eq!(engine, reference);
        let _ = RandomizedDecider::radius(&decider);
    }
}

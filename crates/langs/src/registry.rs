//! The language-case registry: every language in this crate as a
//! first-class, enumerable, sweepable `(language, constructor, decider)`
//! triple.
//!
//! The derandomization argument of the paper is stated for *arbitrary*
//! languages, and after the engine/pipeline refactors every downstream
//! layer (the `rlnc-derand` pipeline, the `rlnc-sweep` workloads, the
//! bench-export trajectory) is generic over such triples. This module
//! closes the loop: [`CaseId`] enumerates the catalog, [`CaseId::case`]
//! materializes a [`LanguageCase`] bundle (boxed trait objects, so sweep
//! grid points can pick a case at runtime), and [`CaseRegistry`] is the
//! name-indexed front door the CLI and the `language-matrix` scenario use.
//!
//! The first three cases (`coloring3`, `amos`, `weak-coloring`) are the
//! legacy `theorem1-pipeline` bundles, preserved bit-for-bit (same
//! constructors, deciders, deterministic families, and parameters) so the
//! seed-0 sweep records of the hand-wired pipeline are reproduced exactly.
//!
//! Each case carries:
//!
//! * the [`DistributedLanguage`] under attack (plus, for LCL languages, a
//!   second handle as [`LclLanguage`], so the view-native verdict machinery
//!   and the equivalence suites can reach `is_bad_view`);
//! * a randomized **constructor** with positive failure probability β on
//!   the case's hard instances;
//! * a randomized **decider** with one-sided guarantee `p`;
//! * a deterministic algorithm family for the Claim-2 hard-instance search
//!   (each member fails on every connected regular candidate the scenarios
//!   generate, so the pool always fills);
//! * the quantitative knobs ([`CaseParams`]) and instance-input convention
//!   ([`InputKind`]).

use crate::amos::{Amos, AmosGoldenDecider, BernoulliSelection, GOLDEN_GUARANTEE};
use crate::cole_vishkin::ColeVishkinRingColoring;
use crate::coloring::ProperColoring;
use crate::dominating::MinimalDominatingSet;
use crate::faulty::FaultyConstructor;
use crate::frugal::FrugalColoring;
use crate::lll::{NeighborhoodLll, ResamplingLll};
use crate::majority::{Majority, OneSidedLocalMajorityDecider};
use crate::matching::{MaximalMatching, ProposalMatching};
use crate::mis::{LocalMinimumMis, LubyMis, MaximalIndependentSet};
use crate::random_coloring::RandomColoring;
use crate::weak_coloring::{RandomBitColoring, WeakColoring};
use rlnc_core::algorithm::{FnAlgorithm, LocalAlgorithm, RandomizedLocalAlgorithm};
use rlnc_core::decision::RandomizedDecider;
use rlnc_core::labels::{Label, Labeling};
use rlnc_core::language::{DistributedLanguage, LclLanguage};
use rlnc_core::one_sided::OneSidedLclDecider;
use rlnc_core::view::View;
use rlnc_graph::generators::Family;
use rlnc_graph::{Graph, IdAssignment, NodeId};

/// The identity bound the Cole–Vishkin case is sized for (fixing the
/// iteration count, hence the constructor's radius, across all candidate
/// instances of a sweep).
pub const COLE_VISHKIN_MAX_ID: u64 = 1 << 20;

/// The quantitative knobs a case hands the Theorem-1 pipeline: the claimed
/// construction success probability `r`, the decider guarantee `p`, and the
/// two radii (`t` for the constructor, `t'` for the decider).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaseParams {
    /// The success probability `r` the hypothetical constructor claims.
    pub r: f64,
    /// The decider's guarantee `p > 1/2`.
    pub p: f64,
    /// The constructor's radius `t`.
    pub t: u32,
    /// The decider's radius `t'`.
    pub t_prime: u32,
}

/// How candidate instances of a case obtain their input labeling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputKind {
    /// Empty inputs (input-less tasks: coloring, MIS, `amos`, ...).
    Empty,
    /// Every node's input is its own identity — the naming convention the
    /// matching language resolves output claims against.
    IdentityNames,
    /// Every node's input is the identity of its index-successor on a
    /// cycle — the "common sense of direction" the oriented-ring algorithms
    /// assume (requires the cycle family).
    RingOrientation,
}

/// The named language/constructor/decider cases shipped with the crate, in
/// registry order. The first three are the legacy `theorem1-pipeline`
/// cases and must keep their positions (sweep grids select cases by
/// index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CaseId {
    /// Proper 3-coloring / zero-round random coloring / one-sided decider.
    Coloring3,
    /// `amos` / zero-round Bernoulli selector / golden-ratio decider.
    Amos,
    /// Weak 2-coloring / fair-coin coloring / one-sided decider.
    WeakColoring,
    /// Maximal independent set / one-phase Luby / one-sided decider.
    Mis,
    /// Maximal matching / one-phase proposal matching / one-sided decider.
    Matching,
    /// Minimal dominating set / Bernoulli membership / one-sided radius-2
    /// decider.
    MinDominatingSet,
    /// Neighborhood LLL / zero-round random bits / one-sided decider.
    Lll,
    /// 1-frugal 3-coloring / zero-round random coloring / one-sided decider.
    Frugal,
    /// 3-coloring of oriented rings / fault-injected Cole–Vishkin /
    /// one-sided decider (pins the cycle family).
    ColeVishkin,
    /// `majority` / Bernoulli selection / one-sided local-majority decider.
    Majority,
}

impl CaseId {
    /// All cases, in `index` order (the sweep axis enumeration).
    pub const ALL: [CaseId; 10] = [
        CaseId::Coloring3,
        CaseId::Amos,
        CaseId::WeakColoring,
        CaseId::Mis,
        CaseId::Matching,
        CaseId::MinDominatingSet,
        CaseId::Lll,
        CaseId::Frugal,
        CaseId::ColeVishkin,
        CaseId::Majority,
    ];

    /// The slug recorded in sweep records and tables.
    pub fn name(self) -> &'static str {
        match self {
            CaseId::Coloring3 => "coloring3",
            CaseId::Amos => "amos",
            CaseId::WeakColoring => "weak-coloring",
            CaseId::Mis => "mis",
            CaseId::Matching => "matching",
            CaseId::MinDominatingSet => "min-dominating-set",
            CaseId::Lll => "lll",
            CaseId::Frugal => "frugal-coloring",
            CaseId::ColeVishkin => "cole-vishkin",
            CaseId::Majority => "majority",
        }
    }

    /// Case for a grid-parameter index (`index % |ALL|`), so a sweep axis
    /// can enumerate the whole catalog.
    pub fn from_index(index: u64) -> CaseId {
        CaseId::ALL[(index % CaseId::ALL.len() as u64) as usize]
    }

    /// Looks a case up by its [`CaseId::name`] slug.
    pub fn from_name(name: &str) -> Option<CaseId> {
        CaseId::ALL.into_iter().find(|c| c.name() == name)
    }

    /// Materializes the case's bundle.
    pub fn case(self) -> LanguageCase {
        match self {
            CaseId::Coloring3 => LanguageCase {
                name: self.name(),
                description: "proper 3-coloring under the zero-round random coloring",
                language: Box::new(ProperColoring::new(3)),
                lcl: Some(Box::new(ProperColoring::new(3))),
                constructor: Box::new(RandomColoring::new(3)),
                decider: Box::new(OneSidedLclDecider::new(ProperColoring::new(3), 0.75)),
                det_family: constant_colorers(3),
                params: CaseParams { r: 0.9, p: 0.75, t: 0, t_prime: 1 },
                input: InputKind::Empty,
                pinned_family: None,
            },
            CaseId::Amos => LanguageCase {
                name: self.name(),
                description: "amos (\"at most one selected\") under the Bernoulli selector",
                language: Box::new(Amos::new()),
                lcl: None,
                constructor: Box::new(BernoulliSelection::new(0.15)),
                decider: Box::new(AmosGoldenDecider::new()),
                det_family: selection_family(),
                params: CaseParams { r: 0.9, p: GOLDEN_GUARANTEE, t: 0, t_prime: 0 },
                input: InputKind::Empty,
                pinned_family: None,
            },
            CaseId::WeakColoring => LanguageCase {
                name: self.name(),
                description: "weak 2-coloring under the zero-round fair coin",
                language: Box::new(WeakColoring::new()),
                lcl: Some(Box::new(WeakColoring::new())),
                constructor: Box::new(RandomBitColoring),
                decider: Box::new(OneSidedLclDecider::new(WeakColoring::new(), 0.75)),
                det_family: monochrome_family(),
                params: CaseParams { r: 0.9, p: 0.75, t: 0, t_prime: 1 },
                input: InputKind::Empty,
                pinned_family: None,
            },
            CaseId::Mis => LanguageCase {
                name: self.name(),
                description: "maximal independent set under one-phase Luby",
                language: Box::new(MaximalIndependentSet::new()),
                lcl: Some(Box::new(MaximalIndependentSet::new())),
                constructor: Box::new(LubyMis::new(1)),
                decider: Box::new(OneSidedLclDecider::new(MaximalIndependentSet::new(), 0.75)),
                det_family: mis_family(),
                params: CaseParams { r: 0.9, p: 0.75, t: 1, t_prime: 1 },
                input: InputKind::Empty,
                pinned_family: None,
            },
            CaseId::Matching => LanguageCase {
                name: self.name(),
                description: "maximal matching under one-phase random proposals",
                language: Box::new(MaximalMatching::new()),
                lcl: Some(Box::new(MaximalMatching::new())),
                constructor: Box::new(ProposalMatching::new()),
                decider: Box::new(OneSidedLclDecider::new(MaximalMatching::new(), 0.75)),
                det_family: matching_family(),
                params: CaseParams { r: 0.9, p: 0.75, t: 2, t_prime: 1 },
                input: InputKind::IdentityNames,
                pinned_family: None,
            },
            CaseId::MinDominatingSet => LanguageCase {
                name: self.name(),
                description: "minimal dominating set under Bernoulli membership",
                language: Box::new(MinimalDominatingSet::new()),
                lcl: Some(Box::new(MinimalDominatingSet::new())),
                constructor: Box::new(BernoulliSelection::new(0.5)),
                decider: Box::new(OneSidedLclDecider::new(MinimalDominatingSet::new(), 0.75)),
                det_family: dominating_family(),
                params: CaseParams { r: 0.9, p: 0.75, t: 0, t_prime: 2 },
                input: InputKind::Empty,
                pinned_family: None,
            },
            CaseId::Lll => LanguageCase {
                name: self.name(),
                description: "neighborhood LLL under zero-round random bits",
                language: Box::new(NeighborhoodLll::new()),
                lcl: Some(Box::new(NeighborhoodLll::new())),
                constructor: Box::new(ResamplingLll::new(0)),
                decider: Box::new(OneSidedLclDecider::new(NeighborhoodLll::new(), 0.75)),
                det_family: monochrome_family(),
                params: CaseParams { r: 0.9, p: 0.75, t: 0, t_prime: 1 },
                input: InputKind::Empty,
                pinned_family: None,
            },
            CaseId::Frugal => LanguageCase {
                name: self.name(),
                description: "1-frugal proper 3-coloring under the zero-round random coloring",
                language: Box::new(FrugalColoring::new(3, 1)),
                lcl: Some(Box::new(FrugalColoring::new(3, 1))),
                constructor: Box::new(RandomColoring::new(3)),
                decider: Box::new(OneSidedLclDecider::new(FrugalColoring::new(3, 1), 0.75)),
                det_family: constant_colorers(3),
                params: CaseParams { r: 0.9, p: 0.75, t: 0, t_prime: 1 },
                input: InputKind::Empty,
                pinned_family: None,
            },
            CaseId::ColeVishkin => {
                let cv = ColeVishkinRingColoring::for_max_id(COLE_VISHKIN_MAX_ID);
                let t = cv.rounds();
                LanguageCase {
                    name: self.name(),
                    description: "3-coloring of oriented rings under fault-injected Cole–Vishkin",
                    language: Box::new(ProperColoring::new(3)),
                    lcl: Some(Box::new(ProperColoring::new(3))),
                    constructor: Box::new(FaultyConstructor::new(cv, 0.08, Label::from_u64(0))),
                    decider: Box::new(OneSidedLclDecider::new(ProperColoring::new(3), 0.75)),
                    det_family: constant_colorers(3),
                    params: CaseParams { r: 0.9, p: 0.75, t, t_prime: 1 },
                    input: InputKind::RingOrientation,
                    pinned_family: Some(Family::Cycle),
                }
            }
            CaseId::Majority => LanguageCase {
                name: self.name(),
                description: "majority under fair Bernoulli selection",
                language: Box::new(Majority::new()),
                lcl: None,
                constructor: Box::new(BernoulliSelection::new(0.5)),
                decider: Box::new(OneSidedLocalMajorityDecider::new(1, 0.75)),
                det_family: majority_family(),
                params: CaseParams { r: 0.9, p: 0.75, t: 0, t_prime: 1 },
                input: InputKind::Empty,
                pinned_family: None,
            },
        }
    }
}

/// One language / constructor / decider triple plus the deterministic
/// algorithm family the Claim-2 search runs against. Deliberately boxed:
/// sweep grid points pick a case at runtime, so every downstream consumer
/// drives the bundle through trait objects.
pub struct LanguageCase {
    /// The case's slug (also its [`CaseId::name`]).
    pub name: &'static str,
    /// One-line human-readable description.
    pub description: &'static str,
    /// The distributed language under attack.
    pub language: Box<dyn DistributedLanguage>,
    /// The same language as an [`LclLanguage`] handle when it is locally
    /// checkable — the view-native verdict machinery (`is_bad_view`) and
    /// the equivalence suites reach it here. `None` for the global
    /// languages (`amos`, `majority`).
    pub lcl: Option<Box<dyn LclLanguage>>,
    /// The randomized constructor whose failure probability β the pipeline
    /// measures and boosts.
    pub constructor: Box<dyn RandomizedLocalAlgorithm>,
    /// The randomized decider with one-sided guarantee `p`.
    pub decider: Box<dyn RandomizedDecider>,
    /// Deterministic algorithms for the hard-instance search — each fails
    /// on every connected regular candidate the scenarios generate, so the
    /// pool always fills.
    pub det_family: Vec<Box<dyn LocalAlgorithm>>,
    /// The case's quantitative knobs (`r`, `p`, radii).
    pub params: CaseParams,
    /// The input convention of the case's candidate instances.
    pub input: InputKind,
    /// When `Some`, candidate instances must come from this family no
    /// matter what the sweep axis requests (the oriented-ring case).
    pub pinned_family: Option<Family>,
}

impl LanguageCase {
    /// The decider's checking radius `t'`.
    pub fn checking_radius(&self) -> u32 {
        self.params.t_prime
    }

    /// The constructor's radius `t`.
    pub fn constructor_radius(&self) -> u32 {
        self.params.t
    }

    /// The graph family candidate instances are generated from: the
    /// requested sweep family, unless the case pins one.
    pub fn candidate_family(&self, requested: Family) -> Family {
        self.pinned_family.unwrap_or(requested)
    }

    /// Builds the input labeling of a candidate instance per the case's
    /// [`InputKind`].
    ///
    /// # Panics
    /// Panics if the identity assignment does not cover the graph.
    pub fn build_input(&self, graph: &Graph, ids: &IdAssignment) -> Labeling {
        assert_eq!(graph.node_count(), ids.len(), "identity assignment size mismatch");
        match self.input {
            InputKind::Empty => Labeling::empty(graph.node_count()),
            InputKind::IdentityNames => crate::matching::identity_inputs(graph, ids),
            InputKind::RingOrientation => {
                let n = graph.node_count();
                Labeling::from_fn(graph, |v| {
                    let successor = NodeId(((v.index() + 1) % n) as u32);
                    Label::from_u64(ids.id(successor))
                })
            }
        }
    }
}

/// The name-indexed registry of all shipped cases.
#[derive(Debug, Clone, Default)]
pub struct CaseRegistry {
    ids: Vec<CaseId>,
}

impl CaseRegistry {
    /// The registry of every case shipped with the crate, in
    /// [`CaseId::ALL`] order.
    pub fn builtin() -> Self {
        CaseRegistry {
            ids: CaseId::ALL.to_vec(),
        }
    }

    /// Number of registered cases.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Returns `true` if the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The registered case ids, in registration order.
    pub fn ids(&self) -> &[CaseId] {
        &self.ids
    }

    /// All case names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.ids.iter().map(|c| c.name()).collect()
    }

    /// Looks a case up by name.
    pub fn get(&self, name: &str) -> Option<CaseId> {
        self.ids.iter().copied().find(|c| c.name() == name)
    }

    /// Materializes the bundle of the named case.
    pub fn case(&self, name: &str) -> Option<LanguageCase> {
        self.get(name).map(CaseId::case)
    }

    /// Iterates over materialized bundles, in registration order.
    pub fn iter(&self) -> impl Iterator<Item = LanguageCase> + '_ {
        self.ids.iter().map(|c| c.case())
    }
}

/// Constant colorings `1..=colors` — each fails on any graph with an edge.
fn constant_colorers(colors: u64) -> Vec<Box<dyn LocalAlgorithm>> {
    (1..=colors)
        .map(|c| {
            Box::new(FnAlgorithm::new(1, format!("always-{c}"), move |_: &View| {
                Label::from_u64(c)
            })) as Box<dyn LocalAlgorithm>
        })
        .collect()
}

/// Selection rules that each select at least two nodes on every candidate
/// with at least four nodes (violating `amos`).
fn selection_family() -> Vec<Box<dyn LocalAlgorithm>> {
    vec![
        Box::new(FnAlgorithm::new(0, "select-all", |_: &View| Label::from_bool(true))),
        Box::new(FnAlgorithm::new(0, "select-odd-ids", |v: &View| {
            Label::from_bool(v.center_id() % 2 == 1)
        })),
        Box::new(FnAlgorithm::new(0, "select-even-ids", |v: &View| {
            Label::from_bool(v.center_id() % 2 == 0)
        })),
    ]
}

/// Monochrome colorings — on a connected graph every non-isolated node ends
/// up with an all-same-color neighborhood, so weak 2-coloring (and the
/// neighborhood LLL) fails.
fn monochrome_family() -> Vec<Box<dyn LocalAlgorithm>> {
    vec![
        Box::new(FnAlgorithm::new(1, "all-zero", |_: &View| Label::from_bool(false))),
        Box::new(FnAlgorithm::new(1, "all-one", |_: &View| Label::from_bool(true))),
        Box::new(FnAlgorithm::new(1, "degree-parity", |v: &View| {
            Label::from_bool(v.center_degree() % 2 == 1)
        })),
    ]
}

/// MIS rules that fail on every connected consecutive-identity candidate:
/// `all-in` violates independence across any edge, `all-out` violates
/// maximality everywhere, and the local-minimum rule selects only the
/// global identity minimum (so distant nodes go uncovered).
fn mis_family() -> Vec<Box<dyn LocalAlgorithm>> {
    vec![
        Box::new(FnAlgorithm::new(1, "all-in", |_: &View| Label::from_bool(true))),
        Box::new(FnAlgorithm::new(1, "all-out", |_: &View| Label::from_bool(false))),
        Box::new(LocalMinimumMis),
    ]
}

/// Matching rules that fail on every connected candidate: claiming nobody
/// violates maximality across any edge, and claiming the smallest-name
/// neighbor is non-reciprocal somewhere on any cycle-like structure.
fn matching_family() -> Vec<Box<dyn LocalAlgorithm>> {
    vec![
        Box::new(FnAlgorithm::new(1, "claim-nothing", |_: &View| Label::from_u64(0))),
        Box::new(FnAlgorithm::new(1, "claim-min-name-neighbor", |v: &View| {
            let min = v
                .center_neighbor_indices()
                .map(|i| v.input(i).as_u64())
                .min()
                .unwrap_or(0);
            Label::from_u64(min)
        })),
    ]
}

/// Dominating-set rules that fail on every regular candidate: everyone in
/// the set violates minimality (no member has a private node once every
/// node has two dominators), nobody violates domination.
fn dominating_family() -> Vec<Box<dyn LocalAlgorithm>> {
    vec![
        Box::new(FnAlgorithm::new(1, "all-in", |_: &View| Label::from_bool(true))),
        Box::new(FnAlgorithm::new(1, "select-none", |_: &View| Label::from_bool(false))),
    ]
}

/// Majority rules that fail on every candidate: selecting nobody, and
/// selecting only local identity minima (one node under consecutive
/// identities — never a strict majority for n ≥ 3).
fn majority_family() -> Vec<Box<dyn LocalAlgorithm>> {
    vec![
        Box::new(FnAlgorithm::new(0, "select-none", |_: &View| Label::from_bool(false))),
        Box::new(LocalMinimumMis),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlnc_core::config::{Instance, IoConfig};
    use rlnc_core::Simulator;
    use rlnc_par::SeedSequence;

    #[test]
    fn registry_enumerates_unique_cases_with_legacy_prefix() {
        let registry = CaseRegistry::builtin();
        assert_eq!(registry.len(), CaseId::ALL.len());
        assert!(!registry.is_empty());
        let names = registry.names();
        let unique: std::collections::HashSet<&&str> = names.iter().collect();
        assert_eq!(unique.len(), names.len(), "duplicate case names");
        // The legacy theorem1-pipeline cases keep their grid indices.
        assert_eq!(CaseId::from_index(0), CaseId::Coloring3);
        assert_eq!(CaseId::from_index(1), CaseId::Amos);
        assert_eq!(CaseId::from_index(2), CaseId::WeakColoring);
        assert_eq!(CaseId::from_index(10), CaseId::Coloring3);
        assert_eq!(registry.get("mis"), Some(CaseId::Mis));
        assert_eq!(CaseId::from_name("cole-vishkin"), Some(CaseId::ColeVishkin));
        assert_eq!(CaseId::from_name("no-such-case"), None);
        assert!(registry.case("matching").is_some());
        assert_eq!(registry.iter().count(), registry.len());
    }

    #[test]
    fn case_metadata_is_consistent() {
        for id in CaseId::ALL {
            let case = id.case();
            assert_eq!(case.name, id.name());
            assert!(!case.description.is_empty());
            assert!(!case.det_family.is_empty(), "{}: empty det family", case.name);
            assert_eq!(
                case.constructor.radius(),
                case.constructor_radius(),
                "{}: constructor radius must match params.t",
                case.name
            );
            assert_eq!(
                case.decider.radius(),
                case.checking_radius(),
                "{}: decider radius must match params.t'",
                case.name
            );
            if let Some(lcl) = &case.lcl {
                assert_eq!(
                    lcl.radius(),
                    case.checking_radius(),
                    "{}: LCL radius must match the decider's",
                    case.name
                );
                assert_eq!(
                    LclLanguage::name(&**lcl),
                    case.language.name(),
                    "{}: the lcl handle must be the same language",
                    case.name
                );
            }
            assert!(case.params.p > 0.5 && case.params.p <= 1.0);
            assert!(case.params.r > 0.0 && case.params.r <= 1.0);
        }
    }

    #[test]
    fn every_det_family_member_fails_on_a_candidate() {
        // The Claim-2 search needs one failing instance per deterministic
        // algorithm; check the first candidate size that scenarios use.
        for id in CaseId::ALL {
            let case = id.case();
            let family = case.candidate_family(Family::Cycle);
            let mut rng = SeedSequence::new(1).rng();
            let graph = family.generate(14, &mut rng);
            let ids = IdAssignment::consecutive(&graph);
            let input = case.build_input(&graph, &ids);
            let inst = Instance::new(&graph, &input, &ids);
            for algo in &case.det_family {
                let out = Simulator::sequential().run(&**algo, &inst);
                let io = IoConfig::new(&graph, &input, &out);
                assert!(
                    !case.language.contains(&io),
                    "{}: algorithm '{}' does not fail on a 14-node {} candidate",
                    case.name,
                    algo.name(),
                    family.name()
                );
            }
        }
    }

    #[test]
    fn constructors_have_positive_failure_probability() {
        for id in CaseId::ALL {
            let case = id.case();
            let family = case.candidate_family(Family::Cycle);
            let mut rng = SeedSequence::new(2).rng();
            let graph = family.generate(12, &mut rng);
            let ids = IdAssignment::consecutive(&graph);
            let input = case.build_input(&graph, &ids);
            let inst = Instance::new(&graph, &input, &ids);
            let mut failures = 0u32;
            for trial in 0..40u64 {
                let out = Simulator::sequential().run_randomized(
                    &*case.constructor,
                    &inst,
                    SeedSequence::new(7).child(trial),
                );
                if !case.language.contains(&IoConfig::new(&graph, &input, &out)) {
                    failures += 1;
                }
            }
            assert!(failures > 0, "{}: constructor never fails (β = 0)", case.name);
        }
    }

    #[test]
    fn input_kinds_build_the_expected_labelings() {
        let graph = rlnc_graph::generators::cycle(6);
        let ids = IdAssignment::consecutive(&graph);
        let empty = CaseId::Coloring3.case().build_input(&graph, &ids);
        assert!(empty.as_slice().iter().all(Label::is_empty));
        let names = CaseId::Matching.case().build_input(&graph, &ids);
        for v in graph.nodes() {
            assert_eq!(names.get(v).as_u64(), ids.id(v));
        }
        let oriented = CaseId::ColeVishkin.case().build_input(&graph, &ids);
        for v in graph.nodes() {
            let successor = NodeId(((v.index() + 1) % 6) as u32);
            assert_eq!(oriented.get(v).as_u64(), ids.id(successor));
        }
        // The oriented-ring case pins the cycle family.
        assert_eq!(
            CaseId::ColeVishkin.case().candidate_family(Family::Prism),
            Family::Cycle
        );
        assert_eq!(
            CaseId::Coloring3.case().candidate_family(Family::Prism),
            Family::Prism
        );
    }
}

//! Maximal matching: language and constructors.
//!
//! Each node outputs either `0` ("unmatched") or the identity of the
//! neighbor it is matched to. The language is locally checkable with
//! radius 1: a ball is bad when the center's claimed partner is not a
//! neighbor, the claim is not reciprocated, or the center and one of its
//! neighbors are both unmatched (maximality).

use rlnc_core::prelude::*;
use rand::Rng;
use rlnc_graph::NodeId;

/// The maximal-matching language.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaximalMatching;

impl MaximalMatching {
    /// Creates the language.
    pub fn new(/* no parameters */) -> Self {
        MaximalMatching
    }

    /// The matched pairs `(u, v)` with `id(u) < id(v)` in a configuration.
    pub fn matched_pairs(io: &IoConfig<'_>, ids: &rlnc_graph::IdAssignment) -> Vec<(NodeId, NodeId)> {
        let mut pairs = Vec::new();
        for v in io.graph.nodes() {
            let claim = io.output.get(v).as_u64();
            if claim == 0 {
                continue;
            }
            for w in io.graph.neighbor_ids(v) {
                if ids.id(w) == claim && ids.id(v) < claim {
                    pairs.push((v, w));
                }
            }
        }
        pairs
    }
}

/// Checks the radius-1 matching predicate at one node, given a lookup from
/// identities to outputs restricted to the ball.
fn matching_bad_ball(io: &IoConfig<'_>, ids_of: impl Fn(NodeId) -> u64, v: NodeId) -> bool {
    let claim = io.output.get(v).as_u64();
    if claim == 0 {
        // Maximality: no neighbor may also be unmatched.
        return io.graph.neighbor_ids(v).any(|w| io.output.get(w).as_u64() == 0);
    }
    // The claimed partner must be a neighbor that claims us back.
    match io.graph.neighbor_ids(v).find(|&w| ids_of(w) == claim) {
        None => true,
        Some(w) => io.output.get(w).as_u64() != ids_of(v),
    }
}

impl LclLanguage for MaximalMatching {
    fn radius(&self) -> u32 {
        1
    }

    fn is_bad_ball(&self, io: &IoConfig<'_>, v: NodeId) -> bool {
        // The matching language needs identities to interpret outputs. The
        // convention used throughout this crate: outputs reference
        // identities, and the language evaluates them against the *input*
        // labels, which the constructors set to each node's own identity.
        // (An alternative would be port numbers; identities keep the labels
        // in F_k for k ≥ 8.)
        matching_bad_ball(io, |w| io.input.get(w).as_u64(), v)
    }

    fn is_bad_view(&self, view: &View) -> bool {
        // SoA fast path: claims and partner lookups only ever compare
        // decoded values (`as_u64`), which `Label::key_value` reproduces
        // exactly. Needs both lanes — outputs for claims, inputs for names.
        if let (Some(out_keys), Some(in_keys)) = (view.soa_outputs(), view.soa_inputs()) {
            let center = view.center_local();
            let claim = Label::key_value(out_keys[center]);
            if claim == 0 {
                let mut unmatched = 0u64;
                for i in view.center_neighbor_indices() {
                    unmatched |= u64::from(Label::key_value(out_keys[i]) == 0);
                }
                return unmatched != 0;
            }
            let mut partner = None;
            for i in view.center_neighbor_indices() {
                if Label::key_value(in_keys[i]) == claim {
                    partner = Some(i);
                    break;
                }
            }
            return match partner {
                None => true,
                Some(i) => Label::key_value(out_keys[i]) != Label::key_value(in_keys[center]),
            };
        }
        let center = view.center_local();
        let claim = view.output(center).as_u64();
        if claim == 0 {
            // Maximality: no neighbor may also be unmatched.
            return view
                .center_neighbor_indices()
                .any(|i| view.output(i).as_u64() == 0);
        }
        // The claimed partner must be a neighbor that claims us back
        // (names are the input labels, as in `is_bad_ball`).
        let mut partner = None;
        for i in view.center_neighbor_indices() {
            if view.input(i).as_u64() == claim {
                partner = Some(i);
                break;
            }
        }
        match partner {
            None => true,
            Some(i) => view.output(i).as_u64() != view.input(center).as_u64(),
        }
    }

    fn name(&self) -> String {
        "maximal-matching".to_string()
    }
}

/// Builds the input labeling the matching language expects: every node's
/// input is its own identity.
pub fn identity_inputs(graph: &rlnc_graph::Graph, ids: &rlnc_graph::IdAssignment) -> Labeling {
    Labeling::from_fn(graph, |v| Label::from_u64(ids.id(v)))
}

/// Randomized proposal-based maximal matching, simulated for a fixed number
/// of phases. In each phase every unmatched node proposes to a uniformly
/// random unmatched neighbor; proposals that are mutual (or accepted by the
/// lowest-identity proposer rule) become matches.
#[derive(Debug, Clone, Copy)]
pub struct RandomizedMatching {
    phases: u32,
}

impl RandomizedMatching {
    /// The algorithm with a fixed number of phases (= half the view radius).
    pub fn new(phases: u32) -> Self {
        assert!(phases >= 1);
        RandomizedMatching { phases }
    }

    /// A phase count suitable for `n`-node graphs (`2 log2 n + 4`).
    pub fn for_graph_size(n: usize) -> Self {
        RandomizedMatching::new(2 * (usize::BITS - n.leading_zeros()) + 4)
    }

    /// Number of phases simulated.
    pub fn phases(&self) -> u32 {
        self.phases
    }

    fn proposal(view: &View, coins: &Coins, i: usize, phase: u32, candidates: &[usize]) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        let mut rng = coins.for_view_node(view, i);
        let mut choice = 0usize;
        for _ in 0..=phase {
            choice = rng.random_range(0..candidates.len().max(1));
        }
        candidates.get(choice).copied()
    }
}

impl RandomizedLocalAlgorithm for RandomizedMatching {
    fn radius(&self) -> u32 {
        // Each phase needs one round of proposals and one of accepts.
        2 * self.phases
    }

    fn output(&self, view: &View, coins: &Coins) -> Label {
        let n = view.len();
        let graph = view.local_graph();
        let mut partner: Vec<Option<usize>> = vec![None; n];
        for phase in 0..self.phases {
            // Unmatched nodes propose to a random unmatched neighbor. The
            // candidate list is sorted by identity so the random index maps
            // to the same neighbor no matter which simulating node runs
            // this code (local indices differ across views; identities do
            // not).
            let proposals: Vec<Option<usize>> = (0..n)
                .map(|i| {
                    if partner[i].is_some() {
                        return None;
                    }
                    let mut candidates: Vec<usize> = graph
                        .neighbor_ids(NodeId::from_index(i))
                        .map(|w| w.index())
                        .filter(|&w| partner[w].is_none())
                        .collect();
                    candidates.sort_by_key(|&w| view.id(w));
                    Self::proposal(view, coins, i, phase, &candidates)
                })
                .collect();
            // A proposal is accepted when it is mutual, or when the target
            // accepts the proposer with the smallest identity among its
            // proposers (deterministic tie-breaking keeps all simulating
            // nodes consistent).
            let mut accepted: Vec<Option<usize>> = vec![None; n];
            for i in 0..n {
                if partner[i].is_some() || proposals[i].is_some() {
                    continue;
                }
                // i did not propose (it was matched or had no candidates).
            }
            for target in 0..n {
                if partner[target].is_some() {
                    continue;
                }
                let mut proposers: Vec<usize> = (0..n)
                    .filter(|&i| proposals[i] == Some(target) && partner[i].is_none())
                    .collect();
                if let Some(own_proposal) = proposals[target] {
                    // Mutual proposals take precedence.
                    if proposals[own_proposal] == Some(target) {
                        accepted[target] = Some(own_proposal);
                        continue;
                    }
                }
                proposers.sort_by_key(|&i| view.id(i));
                if let Some(&winner) = proposers.first() {
                    accepted[target] = Some(winner);
                }
            }
            // Materialize matches where both sides agree (target accepted a
            // proposer, and the proposer is still free). The order in which
            // targets are materialized can matter when a proposer is itself
            // a target, so iterate in increasing-identity order — a
            // canonical order shared by every simulating node (local index
            // order is not).
            let mut targets: Vec<usize> = (0..n).collect();
            targets.sort_by_key(|&t| view.id(t));
            for target in targets {
                if let Some(proposer) = accepted[target] {
                    if partner[target].is_none() && partner[proposer].is_none() {
                        partner[target] = Some(proposer);
                        partner[proposer] = Some(target);
                    }
                }
            }
        }
        match partner[view.center_local()] {
            Some(mate) => Label::from_u64(view.id(mate)),
            None => Label::from_u64(0),
        }
    }

    fn name(&self) -> String {
        format!("randomized-matching({} phases)", self.phases)
    }
}

/// A one-phase randomized proposal matching whose claims reference the
/// language's *input names* (each node's input is its name, see
/// [`identity_inputs`]) rather than raw identities. This keeps the output
/// meaningful under the identity shifts the Claim-2 hard-instance search
/// applies: shifting relabels identities but preserves inputs, so the
/// language still resolves every claim.
///
/// Every undecided node proposes to a uniformly random neighbor; exactly
/// the *mutual* proposals become matches. One phase rarely reaches
/// maximality — which is precisely the positive failure probability β the
/// derandomization pipeline's Claim-2/Claim-3 stages need from a concrete
/// randomized constructor. Evaluating a neighbor's proposal needs that
/// neighbor's full adjacency, hence radius 2.
#[derive(Debug, Clone, Copy, Default)]
pub struct ProposalMatching;

impl ProposalMatching {
    /// Creates the constructor.
    pub fn new() -> Self {
        ProposalMatching
    }

    /// The proposal of the node at local index `i`: a uniformly random
    /// neighbor, drawn from `i`'s private coins over the candidate list in
    /// canonical `(name, identity)` order — so every simulating node that
    /// can see `i`'s full neighborhood computes the same proposal.
    fn proposal(view: &View, coins: &Coins, i: usize) -> Option<usize> {
        let graph = view.local_graph();
        let mut candidates: Vec<usize> = graph
            .neighbor_ids(NodeId::from_index(i))
            .map(|w| w.index())
            .collect();
        if candidates.is_empty() {
            return None;
        }
        candidates.sort_by_key(|&w| (view.input(w).as_u64(), view.id(w)));
        let mut rng = coins.for_view_node(view, i);
        Some(candidates[rng.random_range(0..candidates.len())])
    }
}

impl RandomizedLocalAlgorithm for ProposalMatching {
    fn radius(&self) -> u32 {
        2
    }

    fn output(&self, view: &View, coins: &Coins) -> Label {
        let center = view.center_local();
        if let Some(target) = Self::proposal(view, coins, center) {
            if Self::proposal(view, coins, target) == Some(center) {
                return Label::from_u64(view.input(target).as_u64());
            }
        }
        Label::from_u64(0)
    }

    fn name(&self) -> String {
        "proposal-matching".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlnc_core::Simulator;
    use rlnc_graph::generators::{cycle, path};
    use rlnc_graph::IdAssignment;
    use rlnc_par::rng::SeedSequence;

    fn matching_instance(graph: rlnc_graph::Graph) -> (rlnc_graph::Graph, Labeling, IdAssignment) {
        let ids = IdAssignment::consecutive(&graph);
        let input = identity_inputs(&graph, &ids);
        (graph, input, ids)
    }

    #[test]
    fn language_accepts_hand_built_perfect_matching() {
        let (g, x, ids) = matching_instance(cycle(6));
        // Match (0,1), (2,3), (4,5) by identities.
        let y = Labeling::from_fn(&g, |v| {
            let mate = if v.0 % 2 == 0 { v.0 + 1 } else { v.0 - 1 };
            Label::from_u64(ids.id(NodeId(mate)))
        });
        let io = IoConfig::new(&g, &x, &y);
        let lang = MaximalMatching::new();
        assert!(lang.contains(&io));
        assert_eq!(MaximalMatching::matched_pairs(&io, &ids).len(), 3);
    }

    #[test]
    fn language_rejects_non_reciprocal_and_non_maximal_outputs() {
        let (g, x, ids) = matching_instance(path(4));
        let lang = MaximalMatching::new();
        // Node 0 claims node 1, but node 1 claims nobody.
        let mut y = Labeling::new(vec![Label::from_u64(0); 4]);
        y.set(NodeId(0), Label::from_u64(ids.id(NodeId(1))));
        assert!(!lang.contains(&IoConfig::new(&g, &x, &y)));
        // Empty matching on a path is not maximal.
        let empty = Labeling::new(vec![Label::from_u64(0); 4]);
        assert!(!lang.contains(&IoConfig::new(&g, &x, &empty)));
        // Claiming a non-neighbor is rejected.
        let mut far = Labeling::new(vec![Label::from_u64(0); 4]);
        far.set(NodeId(0), Label::from_u64(ids.id(NodeId(3))));
        far.set(NodeId(3), Label::from_u64(ids.id(NodeId(0))));
        assert!(!lang.contains(&IoConfig::new(&g, &x, &far)));
    }

    #[test]
    fn randomized_matching_reaches_maximality_with_enough_phases() {
        for graph in [cycle(32), path(21)] {
            let (g, x, ids) = matching_instance(graph);
            let inst = Instance::new(&g, &x, &ids);
            let algo = RandomizedMatching::for_graph_size(g.node_count());
            let out = Simulator::new().run_randomized(&algo, &inst, SeedSequence::new(9).child(2));
            let io = IoConfig::new(&g, &x, &out);
            let lang = MaximalMatching::new();
            assert!(
                lang.contains(&io),
                "randomized matching should be maximal on {} nodes after {} phases",
                g.node_count(),
                algo.phases()
            );
        }
    }

    #[test]
    fn proposal_matching_outputs_are_reciprocal_and_shift_invariant() {
        let (g, x, ids) = matching_instance(cycle(14));
        let inst = Instance::new(&g, &x, &ids);
        let algo = ProposalMatching::new();
        let lang = MaximalMatching::new();
        for trial in 0..12u64 {
            let seed = SeedSequence::new(4).child(trial);
            let out = Simulator::sequential().run_randomized(&algo, &inst, seed);
            let io = IoConfig::new(&g, &x, &out);
            // Every non-zero claim must be reciprocated (the only bad balls
            // a mutual-proposal matching can leave are maximality ones).
            for v in g.nodes() {
                let claim = out.get(v).as_u64();
                if claim == 0 {
                    continue;
                }
                let partner = g
                    .neighbor_ids(v)
                    .find(|&w| x.get(w).as_u64() == claim)
                    .expect("claims resolve to a neighbor name");
                assert_eq!(out.get(partner).as_u64(), x.get(v).as_u64());
            }
            // Claims reference input names, so shifting the identities (as
            // the Claim-2 search does) preserves the verdict of every ball.
            let shifted = IdAssignment::new(ids.as_slice().iter().map(|&i| i + 500).collect());
            let bad_before = rlnc_core::language::bad_ball_count(&lang, &io);
            let shifted_out =
                Simulator::sequential().run_randomized(&algo, &Instance::new(&g, &x, &shifted), seed);
            let bad_after = rlnc_core::language::bad_ball_count(
                &lang,
                &IoConfig::new(&g, &x, &shifted_out),
            );
            assert_eq!(bad_before, bad_after, "trial {trial}");
        }
    }

    #[test]
    fn matching_success_probability_increases_with_phases() {
        let (g, x, ids) = matching_instance(cycle(24));
        let inst = Instance::new(&g, &x, &ids);
        let lang = MaximalMatching::new();
        let few = Simulator::new().construction_success(&RandomizedMatching::new(1), &inst, &lang, 200, 8);
        let many = Simulator::new().construction_success(&RandomizedMatching::new(10), &inst, &lang, 200, 8);
        assert!(many.p_hat >= few.p_hat);
        assert!(many.p_hat > 0.9);
    }
}

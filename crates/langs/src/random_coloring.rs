//! The zero-round uniformly random coloring — the ε-slack constructor.
//!
//! §1.1 of the paper: "the trivial randomized algorithm in which every node
//! picks independently uniformly at random a color 1, 2, or 3, enables to
//! guarantee that, with constant probability, a fraction 1 − ε of the nodes
//! are properly colored". §5 uses the same algorithm (with Δ+1 colors) to
//! separate BPLD from BPLD^{#node}. This module provides that constructor;
//! experiment E2 measures the fraction it properly colors and experiment E9
//! compares it against every deterministic constant-round alternative.

use rlnc_core::prelude::*;
use rand::Rng;

/// The zero-round constructor: output a uniformly random color in
/// `{1, ..., colors}`, independently at every node.
#[derive(Debug, Clone, Copy)]
pub struct RandomColoring {
    colors: u64,
}

impl RandomColoring {
    /// Random coloring with the given palette size.
    pub fn new(colors: u64) -> Self {
        assert!(colors >= 1);
        RandomColoring { colors }
    }

    /// The `(Δ+1)`-palette variant for graphs of maximum degree `delta`.
    pub fn delta_plus_one(delta: usize) -> Self {
        RandomColoring::new(delta as u64 + 1)
    }

    /// Palette size.
    pub fn colors(&self) -> u64 {
        self.colors
    }

    /// The expected fraction of properly colored nodes on a `d`-regular
    /// graph: each neighbor collides with probability `1/colors`, so a node
    /// is proper with probability `(1 − 1/colors)^d`.
    pub fn expected_proper_fraction(&self, degree: usize) -> f64 {
        (1.0 - 1.0 / self.colors as f64).powi(degree as i32)
    }
}

impl RandomizedLocalAlgorithm for RandomColoring {
    fn radius(&self) -> u32 {
        0
    }

    fn output(&self, view: &View, coins: &Coins) -> Label {
        let mut rng = coins.for_center(view);
        Label::from_u64(rng.random_range(1..=self.colors))
    }

    fn name(&self) -> String {
        format!("random-{}-coloring", self.colors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring::{improperly_colored_nodes, ProperColoring};
    use rlnc_core::relaxation::EpsilonSlack;
    use rlnc_core::Simulator;
    use rlnc_graph::generators::cycle;
    use rlnc_graph::IdAssignment;
    use rlnc_par::rng::SeedSequence;
    use rlnc_par::trials::MonteCarlo;

    #[test]
    fn expected_proper_fraction_on_the_ring_is_four_ninths_per_pair() {
        // On the ring with 3 colors, a node is properly colored w.p. (2/3)^2.
        let algo = RandomColoring::new(3);
        assert!((algo.expected_proper_fraction(2) - 4.0 / 9.0).abs() < 1e-12);
        assert_eq!(algo.colors(), 3);
        assert_eq!(RandomColoring::delta_plus_one(2).colors(), 3);
    }

    #[test]
    fn measured_proper_fraction_matches_expectation() {
        let n = 512;
        let g = cycle(n);
        let x = Labeling::empty(n);
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        let algo = RandomColoring::new(3);
        let lang = ProperColoring::new(3);
        let mc = MonteCarlo::new(200).with_seed(21);
        let summary = mc.summarize(|seed| {
            let out = Simulator::sequential().run_randomized(&algo, &inst, seed);
            let io = IoConfig::new(&g, &x, &out);
            1.0 - improperly_colored_nodes(&lang, &io) as f64 / n as f64
        });
        assert!(
            (summary.mean - 4.0 / 9.0).abs() < 0.03,
            "mean proper fraction {} should be near 4/9",
            summary.mean
        );
    }

    #[test]
    fn random_coloring_solves_epsilon_slack_with_constant_probability() {
        // With ε comfortably above the expected improper fraction (5/9), the
        // random coloring lands in the ε-slack relaxation with probability
        // close to 1 (concentration), and certainly with constant
        // probability — the §1.1 claim.
        let n = 256;
        let g = cycle(n);
        let x = Labeling::empty(n);
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        let algo = RandomColoring::new(3);
        let relaxed = EpsilonSlack::new(ProperColoring::new(3), 0.62);
        let est = Simulator::sequential().construction_success(&algo, &inst, &relaxed, 400, 5);
        assert!(est.p_hat > 0.8, "ε-slack success probability {} too small", est.p_hat);
    }

    #[test]
    fn zero_round_outputs_do_not_depend_on_neighbors() {
        // The output at a node depends only on its own coins: rerunning with
        // the same execution seed on a different graph containing the same
        // node index yields the same color.
        let g1 = cycle(8);
        let g2 = cycle(50);
        let x1 = Labeling::empty(8);
        let x2 = Labeling::empty(50);
        let ids1 = IdAssignment::consecutive(&g1);
        let ids2 = IdAssignment::consecutive(&g2);
        let algo = RandomColoring::new(4);
        let seed = SeedSequence::new(77).child(0);
        let out1 = Simulator::sequential().run_randomized(&algo, &Instance::new(&g1, &x1, &ids1), seed);
        let out2 = Simulator::sequential().run_randomized(&algo, &Instance::new(&g2, &x2, &ids2), seed);
        for i in 0..8u32 {
            assert_eq!(out1.get(rlnc_graph::NodeId(i)), out2.get(rlnc_graph::NodeId(i)));
        }
    }
}

//! A constructive Lovász-Local-Lemma (LLL) instance.
//!
//! §1.1 of the paper cites the relaxed constructive LLL \[6\] alongside
//! relaxed coloring: some nodes are allowed to output assignments for which
//! their "bad event" holds. We instantiate the standard
//! neighborhood-monochromaticity LLL: every node outputs a bit, and the bad
//! event `B_v` is "the closed neighborhood `N[v]` is monochromatic". For a
//! `d`-regular graph `Pr[B_v] = 2^{-d}` under uniformly random bits and
//! each event depends on at most `d²` others, so the LLL guarantees an
//! assignment avoiding every bad event when `e·2^{-d}(d² + 1) ≤ 1`
//! (`d ≥ 5` suffices). The constructor is a Moser–Tardos-style parallel
//! resampling loop, simulated locally phase by phase.

use rlnc_core::prelude::*;
use rand::Rng;
use rlnc_graph::NodeId;

/// The LLL language: no closed neighborhood is monochromatic (for nodes of
/// degree at least 1). Identical in shape to weak coloring, but kept as a
/// separate type because the experiments treat it as the paper's LLL
/// example, with its own relaxations.
#[derive(Debug, Clone, Copy, Default)]
pub struct NeighborhoodLll;

impl NeighborhoodLll {
    /// Creates the language.
    pub fn new() -> Self {
        NeighborhoodLll
    }

    /// Whether the bad event holds at `v` (closed neighborhood monochromatic).
    pub fn bad_event(io: &IoConfig<'_>, v: NodeId) -> bool {
        if io.graph.degree(v) == 0 {
            return false;
        }
        let mine = io.output.get(v);
        io.graph.neighbor_ids(v).all(|w| io.output.get(w) == mine)
    }

    /// The LLL condition `e · 2^{-d} · (d² + 1) ≤ 1` for `d`-regular graphs.
    pub fn lll_condition_holds(d: usize) -> bool {
        std::f64::consts::E * 2f64.powi(-(d as i32)) * ((d * d + 1) as f64) <= 1.0
    }
}

impl LclLanguage for NeighborhoodLll {
    fn radius(&self) -> u32 {
        1
    }

    fn is_bad_ball(&self, io: &IoConfig<'_>, v: NodeId) -> bool {
        Self::bad_event(io, v)
    }

    fn is_bad_view(&self, view: &View) -> bool {
        // SoA fast path (key equality is label equality): bad iff the
        // closed neighborhood is non-trivial and monochromatic.
        if let Some(keys) = view.soa_outputs() {
            let mine = keys[view.center_local()];
            let (mut any, mut differs) = (0u64, 0u64);
            for i in view.center_neighbor_indices() {
                any = 1;
                differs |= u64::from(keys[i] != mine);
            }
            return any != 0 && differs == 0;
        }
        let mine = view.output(view.center_local());
        let mut any = false;
        for i in view.center_neighbor_indices() {
            any = true;
            if view.output(i) != mine {
                return false;
            }
        }
        // Degree-0 centers (no neighbor in a radius ≥ 1 ball) are never bad.
        any
    }

    fn name(&self) -> String {
        "neighborhood-lll".to_string()
    }
}

/// Moser–Tardos-style parallel resampling, simulated for a fixed number of
/// phases: start from uniformly random bits; in each phase, every node
/// whose bad event currently holds resamples its bit (all resamplings in a
/// phase happen simultaneously). Simulating `k` phases requires a
/// radius-`2k` view (each phase needs to evaluate the bad events of the
/// neighbors, which look one further hop out).
#[derive(Debug, Clone, Copy)]
pub struct ResamplingLll {
    phases: u32,
}

impl ResamplingLll {
    /// The constructor with the given number of resampling phases.
    pub fn new(phases: u32) -> Self {
        ResamplingLll { phases }
    }

    /// Number of resampling phases.
    pub fn phases(&self) -> u32 {
        self.phases
    }

    fn bit(view: &View, coins: &Coins, i: usize, epoch: u32) -> bool {
        let mut rng = coins.for_view_node(view, i);
        let mut value = false;
        for _ in 0..=epoch {
            value = rng.random_bool(0.5);
        }
        value
    }
}

impl RandomizedLocalAlgorithm for ResamplingLll {
    fn radius(&self) -> u32 {
        2 * self.phases
    }

    fn output(&self, view: &View, coins: &Coins) -> Label {
        let n = view.len();
        let graph = view.local_graph();
        // epoch[i] counts how many times node i has (re)sampled; its current
        // bit is the epoch[i]-th draw of its private stream, so all
        // simulating nodes agree on everyone's bit at every phase.
        let mut epoch = vec![0u32; n];
        let current_bit =
            |epoch: &[u32], i: usize| Self::bit(view, coins, i, epoch[i]);
        for _ in 0..self.phases {
            let violated: Vec<bool> = (0..n)
                .map(|i| {
                    let v = NodeId::from_index(i);
                    if graph.degree(v) == 0 {
                        return false;
                    }
                    let mine = current_bit(&epoch, i);
                    graph.neighbor_ids(v).all(|w| current_bit(&epoch, w.index()) == mine)
                })
                .collect();
            for i in 0..n {
                if violated[i] {
                    epoch[i] += 1;
                }
            }
        }
        Label::from_bool(current_bit(&epoch, view.center_local()))
    }

    fn name(&self) -> String {
        format!("resampling-lll({} phases)", self.phases)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlnc_core::language::bad_ball_count;
    use rlnc_core::relaxation::FResilient;
    use rlnc_core::Simulator;
    use rlnc_graph::generators::{cycle, random_regular};
    use rlnc_graph::IdAssignment;

    #[test]
    fn lll_condition_threshold() {
        // e · 2^{-d} · (d² + 1) ≤ 1 first holds at d = 8.
        assert!(!NeighborhoodLll::lll_condition_holds(2));
        assert!(!NeighborhoodLll::lll_condition_holds(4));
        assert!(!NeighborhoodLll::lll_condition_holds(7));
        assert!(NeighborhoodLll::lll_condition_holds(8));
        assert!(NeighborhoodLll::lll_condition_holds(10));
    }

    #[test]
    fn language_flags_monochromatic_neighborhoods() {
        let g = cycle(5);
        let x = Labeling::empty(5);
        let constant = Labeling::from_fn(&g, |_| Label::from_bool(true));
        let io = IoConfig::new(&g, &x, &constant);
        assert!(!NeighborhoodLll::new().contains(&io));
        assert_eq!(bad_ball_count(&NeighborhoodLll::new(), &io), 5);
        assert!(NeighborhoodLll::bad_event(&io, rlnc_graph::NodeId(2)));
        let alternating = Labeling::from_fn(&g, |v| Label::from_bool(v.0 % 2 == 0));
        assert!(NeighborhoodLll::new().contains(&IoConfig::new(&g, &x, &alternating)));
    }

    #[test]
    fn resampling_reduces_bad_events() {
        let mut rng = rand::rng();
        let g = random_regular(40, 3, &mut rng);
        let x = Labeling::empty(40);
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        let lang = NeighborhoodLll::new();
        let mc = rlnc_par::trials::MonteCarlo::new(60).with_seed(19);
        let zero_phase = mc.summarize(|seed| {
            let out = Simulator::sequential().run_randomized(&ResamplingLll::new(0), &inst, seed);
            bad_ball_count(&lang, &IoConfig::new(&g, &x, &out)) as f64
        });
        let five_phases = mc.summarize(|seed| {
            let out = Simulator::sequential().run_randomized(&ResamplingLll::new(5), &inst, seed);
            bad_ball_count(&lang, &IoConfig::new(&g, &x, &out)) as f64
        });
        assert!(
            five_phases.mean < zero_phase.mean,
            "resampling should reduce bad events: {} vs {}",
            five_phases.mean,
            zero_phase.mean
        );
    }

    #[test]
    fn resampling_lands_in_small_f_resilient_relaxations() {
        let mut rng = rand::rng();
        let g = random_regular(30, 4, &mut rng);
        let x = Labeling::empty(30);
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        let relaxed = FResilient::new(NeighborhoodLll::new(), 3);
        let est = Simulator::sequential().construction_success(&ResamplingLll::new(6), &inst, &relaxed, 200, 23);
        assert!(
            est.p_hat > 0.6,
            "resampling should usually leave at most 3 bad events, got {}",
            est.p_hat
        );
    }
}

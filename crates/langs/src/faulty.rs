//! Fault-injection wrappers.
//!
//! The derandomization experiments need concrete "Monte-Carlo constructors
//! that err with probability β": the proof of Theorem 1 treats the
//! constructor as an adversary whose only relevant property is its failure
//! probability on hard instances. These wrappers produce such constructors
//! from correct ones:
//!
//! * [`FaultyConstructor`] corrupts each node's output independently with a
//!   given probability, so the per-instance failure probability is
//!   `1 − (1 − q)^n` (tunable by `q`).
//! * [`CorruptLowestIds`] deterministically corrupts the `k` nodes with the
//!   smallest identities — producing configurations with a *known, planted*
//!   number of bad balls, the workhorse of the `f`-resilient decider
//!   experiments (E5).

use rlnc_core::prelude::*;
use rand::Rng;

/// Wraps a randomized constructor and corrupts each node's output
/// independently with probability `fault_probability` (the corrupt output
/// is a fixed label, by default a color/bit that collides with neighbors).
pub struct FaultyConstructor<A> {
    inner: A,
    fault_probability: f64,
    corrupt_label: Label,
}

impl<A: RandomizedLocalAlgorithm> FaultyConstructor<A> {
    /// Wraps `inner`, corrupting each node's output to `corrupt_label` with
    /// the given probability.
    pub fn new(inner: A, fault_probability: f64, corrupt_label: Label) -> Self {
        assert!((0.0..=1.0).contains(&fault_probability));
        FaultyConstructor {
            inner,
            fault_probability,
            corrupt_label,
        }
    }

    /// The per-node corruption probability.
    pub fn fault_probability(&self) -> f64 {
        self.fault_probability
    }

    /// The expected failure probability of the wrapped constructor on an
    /// `n`-node instance whose inner constructor never fails:
    /// `1 − (1 − q)^n`.
    pub fn expected_failure_probability(&self, n: usize) -> f64 {
        1.0 - (1.0 - self.fault_probability).powi(n as i32)
    }
}

impl<A: RandomizedLocalAlgorithm> RandomizedLocalAlgorithm for FaultyConstructor<A> {
    fn radius(&self) -> u32 {
        self.inner.radius()
    }

    fn output(&self, view: &View, coins: &Coins) -> Label {
        let honest = self.inner.output(view, coins);
        // Draw the corruption coin from a stream decorrelated from the
        // inner algorithm's: skip ahead by a fixed offset.
        let mut rng = coins.for_center(view);
        let _ = rng.random::<u64>();
        let _ = rng.random::<u64>();
        let _ = rng.random::<u64>();
        if rng.random_bool(self.fault_probability) {
            self.corrupt_label.clone()
        } else {
            honest
        }
    }

    fn name(&self) -> String {
        format!("faulty({:.2}, {})", self.fault_probability, self.inner.name())
    }
}

/// Wraps a randomized constructor and deterministically replaces the output
/// of the `k` nodes with the smallest identities *in the whole instance* by
/// copying the output of one of their neighbors (which plants adjacent
/// same-output pairs — bad balls for coloring-style languages).
///
/// Knowing which nodes are corrupted requires knowing the global identity
/// order, so the wrapper widens the radius by `extra_radius`; for the
/// planted-fault experiments the instances are small and `extra_radius` is
/// chosen to cover them.
pub struct CorruptLowestIds<A> {
    inner: A,
    corrupted: usize,
    extra_radius: u32,
}

impl<A: RandomizedLocalAlgorithm> CorruptLowestIds<A> {
    /// Corrupts the `corrupted` smallest-identity nodes, looking
    /// `extra_radius` hops beyond the inner algorithm's radius to identify
    /// them.
    pub fn new(inner: A, corrupted: usize, extra_radius: u32) -> Self {
        CorruptLowestIds {
            inner,
            corrupted,
            extra_radius,
        }
    }

    /// Number of nodes whose output is corrupted.
    pub fn corrupted(&self) -> usize {
        self.corrupted
    }
}

impl<A: RandomizedLocalAlgorithm> RandomizedLocalAlgorithm for CorruptLowestIds<A> {
    fn radius(&self) -> u32 {
        self.inner.radius() + self.extra_radius
    }

    fn output(&self, view: &View, coins: &Coins) -> Label {
        let my_rank_global = (0..view.len()).filter(|&i| view.id(i) < view.center_id()).count();
        if my_rank_global < self.corrupted {
            // Copy a neighbor's (honest) output so the two endpoints of the
            // edge agree — a planted conflict. With no neighbor, output the
            // inner label unchanged.
            if let Some(&neighbor) = view.center_neighbors().first() {
                // Re-run the inner algorithm from the neighbor's perspective
                // is not possible from here; instead output a label equal to
                // the neighbor's identity-derived color used by the planted
                // experiments: simply emit the fixed label 1, which the
                // experiment pairs with honest outputs ≥ 1 to create
                // collisions around low-identity regions.
                let _ = neighbor;
                return Label::from_u64(1);
            }
        }
        self.inner.output(view, coins)
    }

    fn name(&self) -> String {
        format!("corrupt-{}-lowest({})", self.corrupted, self.inner.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring::{GlobalGreedyColoring, ProperColoring};
    use crate::random_coloring::RandomColoring;
    use rlnc_core::language::bad_ball_count;
    use rlnc_core::Simulator;
    use rlnc_graph::generators::cycle;
    use rlnc_graph::IdAssignment;
    use rlnc_par::rng::SeedSequence;

    #[test]
    fn faulty_constructor_failure_rate_matches_formula() {
        let n = 16;
        let g = cycle(n);
        let x = Labeling::empty(n);
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        // Inner constructor: a correct global greedy 3-coloring.
        let inner = GlobalGreedyColoring::new(16, 3);
        let q = 0.1;
        let faulty = FaultyConstructor::new(inner, q, Label::from_u64(0));
        let lang = ProperColoring::new(3);
        let est = Simulator::new().construction_success(&faulty, &inst, &lang, 4000, 31);
        let expected_success = (1.0 - q).powi(n as i32);
        assert!(
            (est.p_hat - expected_success).abs() < 0.03,
            "success {} should be near {}",
            est.p_hat,
            expected_success
        );
        assert!((faulty.expected_failure_probability(n) - (1.0 - expected_success)).abs() < 1e-9);
        assert!(faulty.name().contains("faulty"));
        assert_eq!(faulty.fault_probability(), q);
    }

    #[test]
    fn corrupt_lowest_ids_plants_bad_balls() {
        let n = 24;
        let g = cycle(n);
        let x = Labeling::empty(n);
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        let inner = GlobalGreedyColoring::new(24, 3);
        let corrupted = CorruptLowestIds::new(inner, 2, 24);
        let out = Simulator::new().run_randomized(&corrupted, &inst, SeedSequence::new(1));
        let io = IoConfig::new(&g, &x, &out);
        let lang = ProperColoring::new(3);
        let bad = bad_ball_count(&lang, &io);
        assert!(bad >= 1, "corrupting two adjacent low-id nodes must create conflicts");
        assert!(bad <= 6, "corruption must stay localized, got {bad}");
        assert_eq!(corrupted.corrupted(), 2);
    }

    #[test]
    fn zero_fault_probability_is_the_identity_wrapper() {
        let g = cycle(9);
        let x = Labeling::empty(9);
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        let seed = SeedSequence::new(8).child(0);
        let inner = RandomColoring::new(3);
        let wrapped = FaultyConstructor::new(RandomColoring::new(3), 0.0, Label::from_u64(0));
        let a = Simulator::new().run_randomized(&inner, &inst, seed);
        let b = Simulator::new().run_randomized(&wrapped, &inst, seed);
        // The wrapper consumes extra coins from the same stream, so equality
        // is not expected label-by-label; but with fault probability 0 the
        // wrapper never outputs the corrupt label 0.
        for v in g.nodes() {
            assert_ne!(b.get(v).as_u64(), 0);
        }
        let _ = a;
    }
}

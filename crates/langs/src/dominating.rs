//! Dominating sets and minimal dominating sets.
//!
//! The paper lists "minimal dominating set" among the classical tasks whose
//! `f`-resilient relaxations Corollary 1 covers. Two languages are
//! provided:
//!
//! * [`DominatingSet`] — every node is in the set or has a neighbor in it
//!   (radius 1).
//! * [`MinimalDominatingSet`] — additionally, every member has a *private*
//!   dominated node (itself or a neighbor dominated by nobody else), which
//!   is equivalent to inclusion-minimality and checkable with radius 2.

use rlnc_core::prelude::*;
use rlnc_graph::NodeId;

/// The dominating-set language (radius 1).
#[derive(Debug, Clone, Copy, Default)]
pub struct DominatingSet;

impl DominatingSet {
    /// Creates the language.
    pub fn new() -> Self {
        DominatingSet
    }

    /// Whether `v` is dominated (in the set or adjacent to a member).
    pub fn is_dominated(io: &IoConfig<'_>, v: NodeId) -> bool {
        io.output.get(v).as_bool() || io.graph.neighbor_ids(v).any(|w| io.output.get(w).as_bool())
    }

    /// Number of members of the set.
    pub fn size(io: &IoConfig<'_>) -> usize {
        io.graph.nodes().filter(|&v| io.output.get(v).as_bool()).count()
    }
}

impl LclLanguage for DominatingSet {
    fn radius(&self) -> u32 {
        1
    }

    fn is_bad_ball(&self, io: &IoConfig<'_>, v: NodeId) -> bool {
        !Self::is_dominated(io, v)
    }

    fn is_bad_view(&self, view: &View) -> bool {
        // SoA fast path: a packed key's value part is nonzero exactly when
        // the label decodes to `true`.
        if let Some(keys) = view.soa_outputs() {
            let mut dominated = u64::from(Label::key_value(keys[view.center_local()]) != 0);
            for i in view.center_neighbor_indices() {
                dominated |= u64::from(Label::key_value(keys[i]) != 0);
            }
            return dominated == 0;
        }
        !(view.output(view.center_local()).as_bool()
            || view
                .center_neighbor_indices()
                .any(|i| view.output(i).as_bool()))
    }

    fn name(&self) -> String {
        "dominating-set".to_string()
    }
}

/// The minimal-dominating-set language (radius 2): dominating, and every
/// member has a private node — some `u ∈ N[v]` whose only dominator is `v`.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinimalDominatingSet;

impl MinimalDominatingSet {
    /// Creates the language.
    pub fn new() -> Self {
        MinimalDominatingSet
    }

    fn dominator_count(io: &IoConfig<'_>, u: NodeId) -> usize {
        let own = usize::from(io.output.get(u).as_bool());
        own + io
            .graph
            .neighbor_ids(u)
            .filter(|&w| io.output.get(w).as_bool())
            .count()
    }

    /// Whether member `v` has a private node (so removing it breaks
    /// domination somewhere).
    pub fn has_private_node(io: &IoConfig<'_>, v: NodeId) -> bool {
        debug_assert!(io.output.get(v).as_bool());
        if Self::dominator_count(io, v) == 1 {
            return true; // v dominates itself and nobody else does
        }
        io.graph
            .neighbor_ids(v)
            .any(|u| Self::dominator_count(io, u) == 1)
    }
}

impl LclLanguage for MinimalDominatingSet {
    fn radius(&self) -> u32 {
        2
    }

    fn is_bad_ball(&self, io: &IoConfig<'_>, v: NodeId) -> bool {
        if !DominatingSet::is_dominated(io, v) {
            return true;
        }
        io.output.get(v).as_bool() && !Self::has_private_node(io, v)
    }

    fn is_bad_view(&self, view: &View) -> bool {
        // All reads stay within distance 2 of the center (the private-node
        // check looks at dominator counts of the center's neighbors, whose
        // neighbors are inside a radius-2 view).
        let graph = view.local_graph();
        let in_set = |u: usize| view.output(u).as_bool();
        let dominator_count = |u: usize| {
            usize::from(in_set(u))
                + graph
                    .neighbor_ids(NodeId::from_index(u))
                    .filter(|w| in_set(w.index()))
                    .count()
        };
        let center = view.center_local();
        if dominator_count(center) == 0 {
            return true; // not dominated
        }
        if !in_set(center) {
            return false;
        }
        // Membership without a private node violates minimality.
        if dominator_count(center) == 1 {
            return false; // the center is its own private node
        }
        !view
            .center_neighbor_indices()
            .any(|u| dominator_count(u) == 1)
    }

    fn name(&self) -> String {
        "minimal-dominating-set".to_string()
    }
}

/// The one-round pointer construction: every node points to the
/// smallest-identity node of its closed neighborhood, and the set consists
/// of the pointed-to nodes. Always dominating (each node is dominated by
/// the node it points to); generally *not* minimal — the baseline whose
/// failures motivate the relaxations.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinIdPointerDominatingSet;

impl LocalAlgorithm for MinIdPointerDominatingSet {
    fn radius(&self) -> u32 {
        2
    }

    fn output(&self, view: &View) -> Label {
        // A node is in the set iff some node in its closed neighborhood
        // points to it, i.e. iff the center is the minimum of some
        // neighbor's (or its own) closed neighborhood. Determining this
        // needs the neighbors' neighborhoods, hence radius 2.
        let graph = view.local_graph();
        let center = view.center_local();
        let center_id = view.center_id();
        let closed_min = |i: usize| {
            let mut best = view.id(i);
            for w in graph.neighbor_ids(NodeId::from_index(i)) {
                best = best.min(view.id(w.index()));
            }
            best
        };
        let mut selected = closed_min(center) == center_id;
        for &i in &view.center_neighbors() {
            if closed_min(i) == center_id {
                selected = true;
            }
        }
        Label::from_bool(selected)
    }

    fn name(&self) -> String {
        "min-id-pointer-dominating-set".to_string()
    }
}

/// A global greedy *minimal* dominating set: collect the radius-`t` ball,
/// take all nodes, then repeatedly discard the largest-identity member
/// whose removal keeps the ball dominated. With `t` at least the diameter
/// the result is a correct minimal dominating set.
#[derive(Debug, Clone, Copy)]
pub struct GlobalGreedyMinimalDominatingSet {
    radius: u32,
}

impl GlobalGreedyMinimalDominatingSet {
    /// Greedy pruning over radius-`radius` views.
    pub fn new(radius: u32) -> Self {
        GlobalGreedyMinimalDominatingSet { radius }
    }
}

impl LocalAlgorithm for GlobalGreedyMinimalDominatingSet {
    fn radius(&self) -> u32 {
        self.radius
    }

    fn output(&self, view: &View) -> Label {
        let graph = view.local_graph();
        let n = view.len();
        let mut in_set = vec![true; n];
        let dominated = |in_set: &[bool], u: usize| {
            in_set[u]
                || graph
                    .neighbor_ids(NodeId::from_index(u))
                    .any(|w| in_set[w.index()])
        };
        // Discard in decreasing identity order whenever domination survives.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(view.id(i)));
        for &candidate in &order {
            in_set[candidate] = false;
            let still_dominating = (0..n).all(|u| dominated(&in_set, u));
            if !still_dominating {
                in_set[candidate] = true;
            }
        }
        Label::from_bool(in_set[view.center_local()])
    }

    fn name(&self) -> String {
        format!("global-greedy-mds(t={})", self.radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlnc_core::Simulator;
    use rlnc_graph::generators::{cycle, path, star};
    use rlnc_graph::IdAssignment;

    #[test]
    fn dominating_language_checks_coverage() {
        let g = star(6);
        let x = Labeling::empty(6);
        let center_only = Labeling::from_fn(&g, |v| Label::from_bool(v.0 == 0));
        assert!(DominatingSet::new().contains(&IoConfig::new(&g, &x, &center_only)));
        assert!(MinimalDominatingSet::new().contains(&IoConfig::new(&g, &x, &center_only)));
        let empty = Labeling::from_fn(&g, |_| Label::from_bool(false));
        assert!(!DominatingSet::new().contains(&IoConfig::new(&g, &x, &empty)));
        assert_eq!(DominatingSet::size(&IoConfig::new(&g, &x, &center_only)), 1);
    }

    #[test]
    fn minimality_rejects_redundant_members() {
        // On the star, {center, leaf} is dominating but the leaf is
        // redundant only if... center dominates everything, so the leaf has
        // no private node unless it is its own sole dominator — it is
        // dominated by the center too, so it is redundant.
        let g = star(6);
        let x = Labeling::empty(6);
        let with_leaf = Labeling::from_fn(&g, |v| Label::from_bool(v.0 <= 1));
        let io = IoConfig::new(&g, &x, &with_leaf);
        assert!(DominatingSet::new().contains(&io));
        assert!(!MinimalDominatingSet::new().contains(&io));
    }

    #[test]
    fn pointer_construction_dominates_but_may_not_be_minimal() {
        let g = cycle(12);
        let x = Labeling::empty(12);
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        let out = Simulator::new().run(&MinIdPointerDominatingSet, &inst);
        let io = IoConfig::new(&g, &x, &out);
        assert!(DominatingSet::new().contains(&io), "pointer set must dominate");
    }

    #[test]
    fn global_greedy_produces_minimal_dominating_sets() {
        for graph in [cycle(10), path(9), star(7)] {
            let n = graph.node_count();
            let x = Labeling::empty(n);
            let ids = IdAssignment::consecutive(&graph);
            let inst = Instance::new(&graph, &x, &ids);
            let algo = GlobalGreedyMinimalDominatingSet::new(16);
            let out = Simulator::new().run(&algo, &inst);
            let io = IoConfig::new(&graph, &x, &out);
            assert!(
                MinimalDominatingSet::new().contains(&io),
                "greedy MDS must be minimal and dominating on {n} nodes"
            );
        }
    }
}

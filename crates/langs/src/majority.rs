//! The `majority` language (§2.2.2).
//!
//! `majority` requires that a (strict) majority of the nodes output the
//! selected mark `★`. The paper uses it as the canonical example of a
//! language that is **constructible** in constant time (zero rounds: every
//! node selects itself) but **not decidable** in constant time — counting
//! selected nodes against `n/2` is a global property. It is the mirror
//! image of coloring, which is decidable but not constructible in constant
//! time.

use rlnc_core::prelude::*;
use rand::Rng;

/// The `majority` distributed language.
#[derive(Debug, Clone, Copy, Default)]
pub struct Majority;

impl Majority {
    /// Creates the language.
    pub fn new() -> Self {
        Majority
    }

    /// Number of selected nodes in a configuration.
    pub fn selected_count(io: &IoConfig<'_>) -> usize {
        io.graph.nodes().filter(|&v| io.output.get(v).as_bool()).count()
    }
}

impl DistributedLanguage for Majority {
    fn contains(&self, io: &IoConfig<'_>) -> bool {
        2 * Self::selected_count(io) > io.node_count()
    }

    fn name(&self) -> String {
        "majority".to_string()
    }
}

/// The zero-round constructor: every node selects itself. Trivially correct
/// for `majority` on every graph.
#[derive(Debug, Clone, Copy, Default)]
pub struct AllSelected;

impl LocalAlgorithm for AllSelected {
    fn radius(&self) -> u32 {
        0
    }

    fn output(&self, _view: &View) -> Label {
        Label::from_bool(true)
    }

    fn name(&self) -> String {
        "all-selected".to_string()
    }
}

/// A natural but doomed constant-radius decider attempt for `majority`:
/// accept iff at least half of the nodes in the radius-`t` view are
/// selected. Useful in tests and experiments to exhibit configurations
/// where every local view looks balanced while the global count is not.
#[derive(Debug, Clone, Copy)]
pub struct LocalMajorityDecider {
    radius: u32,
}

impl LocalMajorityDecider {
    /// The decider that looks at radius-`radius` views.
    pub fn new(radius: u32) -> Self {
        LocalMajorityDecider { radius }
    }
}

impl LocalDecider for LocalMajorityDecider {
    fn radius(&self) -> u32 {
        self.radius
    }

    fn accepts(&self, view: &View) -> bool {
        let selected = (0..view.len()).filter(|&i| view.output(i).as_bool()).count();
        2 * selected >= view.len()
    }

    fn name(&self) -> String {
        format!("local-majority-decider(t={})", self.radius)
    }
}

/// The one-sided randomized decider built on the doomed local-majority
/// proxy: a node whose radius-`t` view is at least half selected accepts;
/// otherwise it rejects with probability `p`. `majority` is not in BPLD —
/// no local decider has a real guarantee — but the pipeline's boosting and
/// gluing stages only need *a* randomized decider whose acceptance decays
/// with the number of under-selected regions, which this one supplies (and
/// its local-proxy errors are exactly the phenomenon
/// [`LocalMajorityDecider`] exhibits deterministically).
#[derive(Debug, Clone, Copy)]
pub struct OneSidedLocalMajorityDecider {
    radius: u32,
    p: f64,
}

impl OneSidedLocalMajorityDecider {
    /// The decider over radius-`radius` views with rejection probability
    /// `p` at under-selected centers.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn new(radius: u32, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "rejection probability must lie in [0, 1]");
        OneSidedLocalMajorityDecider { radius, p }
    }

    /// The rejection probability at under-selected centers.
    pub fn rejection_probability(&self) -> f64 {
        self.p
    }
}

impl RandomizedDecider for OneSidedLocalMajorityDecider {
    fn radius(&self) -> u32 {
        self.radius
    }

    fn accepts(&self, view: &View, coins: &Coins) -> bool {
        let selected = (0..view.len()).filter(|&i| view.output(i).as_bool()).count();
        if 2 * selected >= view.len() {
            return true;
        }
        !coins.for_center(view).random_bool(self.p)
    }

    fn name(&self) -> String {
        format!("one-sided-local-majority(t={}, p={})", self.radius, self.p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlnc_core::decision::decide;
    use rlnc_core::Simulator;
    use rlnc_graph::generators::cycle;
    use rlnc_graph::{IdAssignment, NodeId};

    #[test]
    fn majority_counts_strictly() {
        let g = cycle(4);
        let x = Labeling::empty(4);
        let half = Labeling::from_fn(&g, |v| Label::from_bool(v.0 < 2));
        assert!(!Majority::new().contains(&IoConfig::new(&g, &x, &half)));
        let three = Labeling::from_fn(&g, |v| Label::from_bool(v.0 < 3));
        assert!(Majority::new().contains(&IoConfig::new(&g, &x, &three)));
        assert_eq!(Majority::selected_count(&IoConfig::new(&g, &x, &three)), 3);
    }

    #[test]
    fn all_selected_constructs_majority_in_zero_rounds() {
        let g = cycle(11);
        let x = Labeling::empty(11);
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        let out = Simulator::new().run(&AllSelected, &inst);
        assert!(Majority::new().contains(&IoConfig::new(&g, &x, &out)));
    }

    #[test]
    fn one_sided_local_majority_decider_is_one_sided() {
        use rlnc_core::decision::{acceptance_probability, decide_randomized};
        use rlnc_par::SeedSequence;
        let g = cycle(8);
        let x = Labeling::empty(8);
        let ids = IdAssignment::consecutive(&g);
        let decider = OneSidedLocalMajorityDecider::new(1, 0.75);
        assert_eq!(RandomizedDecider::radius(&decider), 1);
        assert_eq!(decider.rejection_probability(), 0.75);
        // All selected: every view is majority-selected, deterministic accept.
        let all = Labeling::from_fn(&g, |_| Label::from_bool(true));
        let io = IoConfig::new(&g, &x, &all);
        for t in 0..8 {
            assert!(decide_randomized(&decider, &io, &ids, SeedSequence::new(t)));
        }
        // None selected: every center is under-selected, acceptance
        // ≈ (1 − p)^n — far below 1/2, the decay the pipeline feeds on.
        let none = Labeling::from_fn(&g, |_| Label::from_bool(false));
        let io = IoConfig::new(&g, &x, &none);
        let est = acceptance_probability(&decider, &io, &ids, 4000, 7);
        let expected = 0.25f64.powi(8);
        assert!((est.p_hat - expected).abs() < 0.02);
    }

    #[test]
    fn local_decider_errs_on_clustered_selections() {
        // The natural constant-radius rule ("accept iff my view is at least
        // half selected") cannot decide majority: when the selected nodes
        // are clustered, nodes deep inside the unselected region see no
        // selected node at all and reject, even though globally a strict
        // majority is selected — a yes-instance wrongly rejected. This is
        // the local-indistinguishability phenomenon that keeps majority out
        // of LD.
        let g = cycle(16);
        let x = Labeling::empty(16);
        let ids = IdAssignment::consecutive(&g);
        // Nodes 0..=8 selected: 9 of 16 — a strict majority, but clustered.
        let clustered = Labeling::from_fn(&g, |v| Label::from_bool(v.0 <= 8));
        let io = IoConfig::new(&g, &x, &clustered);
        assert!(Majority::new().contains(&io));
        let decider = LocalMajorityDecider::new(1);
        assert!(
            !decide(&decider, &io, &ids),
            "node 12's view is all-unselected, so the local rule wrongly rejects"
        );
        // The same rule accepts an evenly spread 50% selection, which is NOT
        // a strict majority — wrong in the other direction too (every
        // unselected node sees 2 of 3 selected; every selected node sees 1
        // of 3 and... the rule uses ≥ half of the view, so 1 of 3 rejects).
        // Verify at least the yes-side failure and the trivial cases.
        let all = Labeling::from_fn(&g, |_| Label::from_bool(true));
        assert!(decide(&decider, &IoConfig::new(&g, &x, &all), &ids));
        let none = Labeling::from_fn(&g, |_| Label::from_bool(false));
        assert!(!decide(&decider, &IoConfig::new(&g, &x, &none), &ids));
        let _ = NodeId(0);
    }
}

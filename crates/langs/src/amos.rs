//! The `amos` language ("at most one selected") and its golden-ratio
//! randomized decider (§2.3.1 of the paper).
//!
//! `amos = {(G,(x,y)) : |{v : y(v) = ★}| ≤ 1}`. It separates LD from BPLD:
//! no deterministic algorithm can decide it in fewer than `D/2 − 1` rounds
//! on graphs of diameter `D` (two selected nodes can be too far apart for
//! any node to see both), yet the zero-round randomized decider below
//! achieves guarantee `p = (√5 − 1)/2 ≈ 0.618 > 1/2`:
//!
//! * non-selected nodes always accept;
//! * selected nodes accept with probability `p` and reject with
//!   probability `1 − p`.
//!
//! On a configuration with one selected node the acceptance probability is
//! exactly `p`; with `k ≥ 2` selected nodes the rejection probability is
//! `1 − p^k ≥ 1 − p² = p` (the golden ratio is the fixed point of
//! `1 − p² = p`).

use rlnc_core::prelude::*;
use rand::Rng;
use rlnc_graph::NodeId;

/// The guarantee of the golden-ratio decider: `(√5 − 1)/2`.
pub const GOLDEN_GUARANTEE: f64 = 0.618_033_988_749_894_9;

/// The `amos` distributed language.
#[derive(Debug, Clone, Copy, Default)]
pub struct Amos;

impl Amos {
    /// Creates the language.
    pub fn new() -> Self {
        Amos
    }

    /// Number of selected nodes in a configuration.
    pub fn selected_count(io: &IoConfig<'_>) -> usize {
        io.graph.nodes().filter(|&v| io.output.get(v).as_bool()).count()
    }
}

impl DistributedLanguage for Amos {
    fn contains(&self, io: &IoConfig<'_>) -> bool {
        Self::selected_count(io) <= 1
    }

    fn name(&self) -> String {
        "amos".to_string()
    }
}

/// The zero-round golden-ratio randomized decider for `amos`.
#[derive(Debug, Clone, Copy)]
pub struct AmosGoldenDecider {
    p: f64,
}

impl Default for AmosGoldenDecider {
    fn default() -> Self {
        AmosGoldenDecider::new()
    }
}

impl AmosGoldenDecider {
    /// The decider with the optimal acceptance probability `(√5 − 1)/2`.
    pub fn new() -> Self {
        AmosGoldenDecider {
            p: GOLDEN_GUARANTEE,
        }
    }

    /// A variant with an arbitrary acceptance probability at selected
    /// nodes, for exploring the guarantee landscape around the golden ratio.
    pub fn with_probability(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        AmosGoldenDecider { p }
    }

    /// The acceptance probability used at selected nodes.
    pub fn acceptance_probability(&self) -> f64 {
        self.p
    }

    /// Theoretical guarantee of the decider as a function of `p`: the
    /// minimum of the yes-side probability (`p`, attained with one selected
    /// node) and the worst no-side probability (`1 − p²`, attained with two
    /// selected nodes).
    pub fn theoretical_guarantee(&self) -> f64 {
        self.p.min(1.0 - self.p * self.p)
    }
}

impl RandomizedDecider for AmosGoldenDecider {
    fn radius(&self) -> u32 {
        0
    }

    fn accepts(&self, view: &View, coins: &Coins) -> bool {
        if !view.output(view.center_local()).as_bool() {
            return true;
        }
        coins.for_center(view).random_bool(self.p)
    }

    fn name(&self) -> String {
        "amos-golden-decider".to_string()
    }
}

/// A constructor for `amos`: only the node with the globally smallest
/// identity within its radius-`t` view selects itself. When `t` is at least
/// the diameter this selects exactly one node (a correct, non-constant-time
/// construction); for smaller `t` several local minima may select
/// themselves, which is exactly the failure mode that makes `amos`
/// interesting.
#[derive(Debug, Clone, Copy)]
pub struct SelectLocalMinimum {
    radius: u32,
}

impl SelectLocalMinimum {
    /// Selects nodes that hold the minimum identity of their radius-`radius`
    /// view.
    pub fn new(radius: u32) -> Self {
        SelectLocalMinimum { radius }
    }
}

impl LocalAlgorithm for SelectLocalMinimum {
    fn radius(&self) -> u32 {
        self.radius
    }

    fn output(&self, view: &View) -> Label {
        let min_id = (0..view.len()).map(|i| view.id(i)).min().unwrap();
        Label::from_bool(view.center_id() == min_id)
    }

    fn name(&self) -> String {
        format!("select-local-minimum(t={})", self.radius)
    }
}

/// The zero-round Bernoulli constructor for `amos`: every node selects
/// itself independently with probability `q`. It fails (two or more nodes
/// selected) with probability `1 − (1−q)^n − n·q·(1−q)^{n−1}`, which is the
/// positive failure rate β the derandomization pipeline's Claim-2/Claim-3
/// stages need from a concrete randomized constructor.
#[derive(Debug, Clone, Copy)]
pub struct BernoulliSelection {
    q: f64,
}

impl BernoulliSelection {
    /// Each node selects itself with probability `q`.
    ///
    /// # Panics
    /// Panics unless `0 ≤ q ≤ 1`.
    pub fn new(q: f64) -> Self {
        assert!((0.0..=1.0).contains(&q), "selection probability must lie in [0, 1]");
        BernoulliSelection { q }
    }

    /// The per-node selection probability.
    pub fn selection_probability(&self) -> f64 {
        self.q
    }

    /// Theoretical failure probability (`≥ 2` selected) on an `n`-node
    /// instance.
    pub fn failure_probability(&self, n: usize) -> f64 {
        let keep = (1.0 - self.q).powi(n as i32 - 1);
        1.0 - keep * (1.0 - self.q) - n as f64 * self.q * keep
    }
}

impl RandomizedLocalAlgorithm for BernoulliSelection {
    fn radius(&self) -> u32 {
        0
    }

    fn output(&self, view: &View, coins: &Coins) -> Label {
        Label::from_bool(coins.for_center(view).random_bool(self.q))
    }

    fn name(&self) -> String {
        format!("bernoulli-selection(q={})", self.q)
    }
}

/// Builds an output labeling with exactly the given nodes selected.
pub fn selection_output(n: usize, selected: &[NodeId]) -> Labeling {
    let mut labeling = Labeling::new(vec![Label::from_bool(false); n]);
    for &v in selected {
        labeling.set(v, Label::from_bool(true));
    }
    labeling
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlnc_core::decision::acceptance_probability;
    use rlnc_core::Simulator;
    use rlnc_graph::generators::{cycle, path};
    use rlnc_graph::IdAssignment;

    #[test]
    fn amos_membership_counts_selected_nodes() {
        let g = cycle(7);
        let x = Labeling::empty(7);
        let lang = Amos::new();
        for (selected, expect) in [(vec![], true), (vec![NodeId(3)], true), (vec![NodeId(1), NodeId(5)], false)] {
            let y = selection_output(7, &selected);
            let io = IoConfig::new(&g, &x, &y);
            assert_eq!(lang.contains(&io), expect);
            assert_eq!(Amos::selected_count(&io), selected.len());
        }
        assert_eq!(lang.name(), "amos");
    }

    #[test]
    fn golden_guarantee_is_the_fixed_point() {
        let p = GOLDEN_GUARANTEE;
        assert!((p * p + p - 1.0).abs() < 1e-12, "p² + p = 1 must hold");
        let decider = AmosGoldenDecider::new();
        assert!((decider.theoretical_guarantee() - p).abs() < 1e-12);
        // Any other p gives a strictly smaller guarantee.
        for other in [0.5, 0.55, 0.65, 0.7, 0.9] {
            assert!(AmosGoldenDecider::with_probability(other).theoretical_guarantee() < p);
        }
    }

    #[test]
    fn measured_acceptance_matches_theory_per_selected_count() {
        let g = cycle(12);
        let x = Labeling::empty(12);
        let ids = IdAssignment::consecutive(&g);
        let decider = AmosGoldenDecider::new();
        for (selected, expected) in [
            (vec![], 1.0),
            (vec![NodeId(0)], GOLDEN_GUARANTEE),
            (vec![NodeId(0), NodeId(6)], GOLDEN_GUARANTEE * GOLDEN_GUARANTEE),
            (
                vec![NodeId(0), NodeId(4), NodeId(8)],
                GOLDEN_GUARANTEE.powi(3),
            ),
        ] {
            let y = selection_output(12, &selected);
            let io = IoConfig::new(&g, &x, &y);
            let est = acceptance_probability(&decider, &io, &ids, 6000, 17);
            assert!(
                (est.p_hat - expected).abs() < 0.03,
                "selected={}: measured {} vs theory {}",
                selected.len(),
                est.p_hat,
                expected
            );
        }
    }

    #[test]
    fn decider_guarantee_exceeds_one_half_on_both_sides() {
        let g = path(9);
        let x = Labeling::empty(9);
        let ids = IdAssignment::consecutive(&g);
        let decider = AmosGoldenDecider::new();
        // Yes-instance: one selected node.
        let yes = selection_output(9, &[NodeId(4)]);
        let io_yes = IoConfig::new(&g, &x, &yes);
        let yes_acc = acceptance_probability(&decider, &io_yes, &ids, 6000, 3);
        assert!(yes_acc.p_hat > 0.55);
        // No-instance: two selected nodes at the two ends (distance 8 — no
        // node can see both within o(D) rounds, yet the randomized decider
        // still rejects with probability > 1/2).
        let no = selection_output(9, &[NodeId(0), NodeId(8)]);
        let io_no = IoConfig::new(&g, &x, &no);
        let no_acc = acceptance_probability(&decider, &io_no, &ids, 6000, 4);
        assert!(1.0 - no_acc.p_hat > 0.55);
    }

    #[test]
    fn local_minimum_selection_is_correct_with_global_view_only() {
        let g = cycle(16);
        let x = Labeling::empty(16);
        let ids = IdAssignment::random_permutation(&g, &mut rand::rng());
        let inst = Instance::new(&g, &x, &ids);
        let lang = Amos::new();
        // Global view (radius ≥ diameter): exactly one node selects.
        let global = SelectLocalMinimum::new(8);
        let out = Simulator::new().run(&global, &inst);
        assert!(lang.contains(&IoConfig::new(&g, &x, &out)));
        assert_eq!(Amos::selected_count(&IoConfig::new(&g, &x, &out)), 1);
        // Radius-1 view on a 16-cycle: several local minima select.
        let local = SelectLocalMinimum::new(1);
        let out = Simulator::new().run(&local, &inst);
        assert!(Amos::selected_count(&IoConfig::new(&g, &x, &out)) >= 2);
    }

    #[test]
    fn bernoulli_selection_fails_with_the_predicted_probability() {
        let g = cycle(10);
        let x = Labeling::empty(10);
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        let constructor = BernoulliSelection::new(0.2);
        assert_eq!(RandomizedLocalAlgorithm::radius(&constructor), 0);
        assert!(constructor.name().contains("0.2"));
        let lang = Amos::new();
        let est = Simulator::new().construction_success(&constructor, &inst, &lang, 6000, 17);
        let failure = constructor.failure_probability(10);
        assert!(failure > 0.3 && failure < 0.9, "failure {failure} not informative");
        assert!(
            ((1.0 - est.p_hat) - failure).abs() < 0.03,
            "measured failure {} vs theory {failure}",
            1.0 - est.p_hat
        );
    }

    #[test]
    #[should_panic(expected = "selection probability")]
    fn bernoulli_selection_rejects_bad_probability() {
        let _ = BernoulliSelection::new(1.5);
    }
}

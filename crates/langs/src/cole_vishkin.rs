//! Cole–Vishkin 3-coloring of oriented rings in `O(log* n)` rounds.
//!
//! §1.1 of the paper recalls Linial's lower bound: no deterministic (or
//! even randomized \[27\]) algorithm 3-colors the `n`-node ring in `o(log* n)`
//! rounds, *even when nodes know `n` and share a sense of direction*. The
//! matching upper bound is the Cole–Vishkin color-reduction technique,
//! implemented here for rings given a consistent orientation (each node's
//! input is the identity of its successor).
//!
//! The algorithm is expressed, like everything else in the workspace, as a
//! function of the radius-`t` view: the node reconstructs the directed
//! window of `t` successors and `t` predecessors around itself and replays
//! the global iterative process inside that window. This is exactly the
//! ball-simulation argument of §2.1 of the paper, and it makes the round
//! complexity explicit: the radius needed is the number of Cole–Vishkin
//! iterations plus `2 × 3` rounds for the three final shift-and-recolor
//! reduction steps (each step reads the successor's color and then both
//! neighbors' new colors, i.e. two communication rounds).

use rlnc_core::prelude::*;
use rlnc_graph::{Graph, IdAssignment, NodeId};

/// Iterated logarithm: the number of times `log2` must be applied to `n`
/// before the value drops to at most 2.
pub fn log_star(n: u64) -> u32 {
    let mut value = n as f64;
    let mut count = 0u32;
    while value > 2.0 {
        value = value.log2();
        count += 1;
    }
    count
}

/// One Cole–Vishkin step: given my current color and my successor's current
/// color (guaranteed different), produce a new, shorter color:
/// `2 * i + bit_i`, where `i` is the lowest bit position where the colors
/// differ and `bit_i` is my bit at that position.
pub fn cv_step(mine: u64, successor: u64) -> u64 {
    debug_assert_ne!(mine, successor, "Cole–Vishkin requires distinct colors");
    let diff = mine ^ successor;
    let i = diff.trailing_zeros() as u64;
    2 * i + ((mine >> i) & 1)
}

/// The number of Cole–Vishkin iterations needed to reduce colors from
/// identities bounded by `max_id` down to the range `{0, ..., 5}`.
pub fn cv_iterations(max_id: u64) -> u32 {
    // Track the number of bits needed for the colors; one step maps
    // `b`-bit colors to colors of value at most `2(b-1)+1`, i.e.
    // `ceil(log2(2b)) `bits. Stop once colors fit in 3 bits (values ≤ 5
    // after one more step from ≤ 7? — see below: when colors fit in 3 bits,
    // the *next* step yields values ≤ 2*2+1 = 5, so we count that step too).
    let mut bits = 64 - max_id.leading_zeros().min(63);
    let mut iterations = 0u32;
    while bits > 3 {
        let max_value = 2 * (u64::from(bits) - 1) + 1;
        bits = 64 - max_value.leading_zeros();
        iterations += 1;
    }
    // One more step maps 3-bit colors into {0,...,5}.
    iterations + 1
}

/// Cole–Vishkin 3-coloring of an oriented ring.
///
/// Expects instances produced by [`oriented_ring_instance`]: the graph is a
/// cycle and each node's input label holds the identity of its successor.
/// Outputs colors in `{1, 2, 3}`.
#[derive(Debug, Clone, Copy)]
pub struct ColeVishkinRingColoring {
    iterations: u32,
}

impl ColeVishkinRingColoring {
    /// The algorithm sized for rings whose identities are at most `max_id`.
    pub fn for_max_id(max_id: u64) -> Self {
        ColeVishkinRingColoring {
            iterations: cv_iterations(max_id),
        }
    }

    /// The algorithm sized for consecutive-identity rings of `n` nodes.
    pub fn for_ring_size(n: usize) -> Self {
        Self::for_max_id(n as u64)
    }

    /// Number of Cole–Vishkin iterations performed (excludes the final
    /// color-reduction rounds).
    pub fn iterations(&self) -> u32 {
        self.iterations
    }

    /// Total number of communication rounds (= the view radius): one per
    /// Cole–Vishkin iteration plus two per shift-and-recolor reduction step.
    pub fn rounds(&self) -> u32 {
        self.iterations + 6
    }

    /// Reconstructs the directed window `[-radius, ..., 0, ..., +radius]`
    /// around the center: `window[radius]` is the center, successors extend
    /// to the right. Entries are `(id, local_index)`. Windows are truncated
    /// at the view boundary (only happens when the radius exceeds what the
    /// view contains, i.e. tiny rings).
    fn window(&self, view: &View) -> Vec<u64> {
        let radius = self.rounds() as usize;
        let n = view.len();
        // successor id of local node i is its input label.
        let successor_id = |i: usize| view.input(i).as_u64();
        let id_of = |i: usize| view.id(i);
        let find_by_id = |id: u64| (0..n).find(|&i| id_of(i) == id);
        let mut window = vec![0u64; 2 * radius + 1];
        window[radius] = view.center_id();
        // Walk successors.
        let mut current = view.center_local();
        for step in 1..=radius {
            match find_by_id(successor_id(current)) {
                Some(next) => {
                    window[radius + step] = id_of(next);
                    current = next;
                }
                None => {
                    // Wrap the window cyclically on tiny rings: reuse ids.
                    window[radius + step] = window[radius + step - 1];
                }
            }
        }
        // Walk predecessors: the predecessor of x is the node whose
        // successor is x.
        let mut current_id = view.center_id();
        for step in 1..=radius {
            let pred = (0..n).find(|&i| successor_id(i) == current_id);
            match pred {
                Some(p) => {
                    window[radius - step] = id_of(p);
                    current_id = id_of(p);
                }
                None => {
                    window[radius - step] = window[radius - step + 1];
                }
            }
        }
        window
    }
}

impl LocalAlgorithm for ColeVishkinRingColoring {
    fn radius(&self) -> u32 {
        self.rounds()
    }

    fn output(&self, view: &View) -> Label {
        let radius = self.rounds() as usize;
        let mut colors = self.window(view);
        let window_len = colors.len();
        // Phase 1: iterated Cole–Vishkin color reduction. After iteration k
        // the color of position j is valid for j ≤ window_len - 1 - k.
        let mut valid = window_len;
        for _ in 0..self.iterations {
            let mut next = colors.clone();
            for j in 0..valid.saturating_sub(1) {
                if colors[j] != colors[j + 1] {
                    next[j] = cv_step(colors[j], colors[j + 1]);
                } else {
                    // Degenerate tiny-ring wrap: keep the color.
                    next[j] = colors[j] % 6;
                }
            }
            valid -= 1;
            colors = next;
        }
        // Phase 2: reduce {0..5} to {0..2} by three shift-and-recolor
        // steps. In the step for color c ∈ {3, 4, 5}: every node first
        // adopts its successor's color (a rotation, so properness is kept),
        // then nodes holding color c — an independent set — recolor to a
        // color in {0, 1, 2} unused by their neighbors. Each step consumes
        // two window positions on the successor side (one for the shift,
        // one because the recolor reads the shifted successor), which is
        // why the radius budgets two rounds per step.
        for target in [3u64, 4, 5] {
            // Shift down: adopt successor's color. Correct for positions
            // 0..valid-1 exclusive of the last.
            let mut shifted = colors.clone();
            for j in 0..valid.saturating_sub(1) {
                shifted[j] = colors[j + 1];
            }
            valid -= 1;
            // Recolor nodes holding the target color, reading both shifted
            // neighbors. Correct for positions 1..valid-1.
            let mut next = shifted.clone();
            for j in 1..valid.saturating_sub(1) {
                if shifted[j] == target {
                    let forbidden = [shifted[j - 1], shifted[j + 1]];
                    next[j] = (0..3).find(|c| !forbidden.contains(c)).unwrap();
                }
            }
            valid -= 1;
            colors = next;
        }
        // The center sits at `radius` = iterations + 6; phase 1 consumed
        // `iterations` positions and phase 2 consumed 6, so the center is
        // still strictly inside the valid prefix.
        debug_assert!(radius < valid);
        Label::from_u64(colors[radius] + 1)
    }

    fn name(&self) -> String {
        format!("cole-vishkin({} iterations)", self.iterations)
    }
}

/// Builds an oriented-ring instance: the cycle `C_n`, consecutive
/// identities, and each node's input set to the identity of its successor
/// `(i + 1) mod n` — the "common sense of direction" the classical ring
/// algorithms assume.
pub fn oriented_ring_instance(n: usize) -> (Graph, Labeling, IdAssignment) {
    let graph = rlnc_graph::generators::cycle(n);
    let ids = IdAssignment::consecutive(&graph);
    let input = Labeling::from_fn(&graph, |v| {
        let successor = NodeId(((v.index() + 1) % n) as u32);
        Label::from_u64(ids.id(successor))
    });
    (graph, input, ids)
}

/// Builds an oriented-ring instance with an arbitrary identity assignment
/// (the successor pointers still follow the node-index order).
pub fn oriented_ring_instance_with_ids(n: usize, ids: IdAssignment) -> (Graph, Labeling, IdAssignment) {
    let graph = rlnc_graph::generators::cycle(n);
    assert_eq!(ids.len(), n);
    let input = Labeling::from_fn(&graph, |v| {
        let successor = NodeId(((v.index() + 1) % n) as u32);
        Label::from_u64(ids.id(successor))
    });
    (graph, input, ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring::ProperColoring;
    use rlnc_core::Simulator;

    #[test]
    fn log_star_values() {
        // log_star counts applications of log2 until the value is at most 2.
        assert_eq!(log_star(1), 0);
        assert_eq!(log_star(2), 0);
        assert_eq!(log_star(4), 1);
        assert_eq!(log_star(16), 2);
        assert_eq!(log_star(65_536), 3);
        assert_eq!(log_star(1 << 63), 4);
        assert!(log_star(u64::MAX) <= 5);
        // Monotone non-decreasing.
        assert!(log_star(100) <= log_star(1_000_000));
    }

    #[test]
    fn cv_step_produces_distinct_small_colors() {
        // Adjacent distinct colors stay distinct after one step.
        for (a, b, c) in [(0b1010u64, 0b1000, 0b0110), (5, 9, 5), (63, 62, 1)] {
            let ab = cv_step(a, b);
            let bc = cv_step(b, c);
            assert_ne!(ab, bc, "cv_step must keep adjacent colors distinct");
        }
        // The new color is bounded by 2 * bit-length.
        assert!(cv_step(u64::MAX - 1, u64::MAX) <= 2 * 64 + 1);
    }

    #[test]
    fn cv_iterations_grows_like_log_star() {
        let small = cv_iterations(16);
        let large = cv_iterations(1 << 40);
        assert!(small <= large);
        assert!(large <= 6, "iterations must stay tiny even for huge ids");
        assert!(cv_iterations(4) >= 1);
    }

    #[test]
    fn cole_vishkin_three_colors_oriented_rings() {
        for n in [5usize, 8, 16, 33, 100, 257] {
            let (graph, input, ids) = oriented_ring_instance(n);
            let algo = ColeVishkinRingColoring::for_ring_size(n);
            let inst = Instance::new(&graph, &input, &ids);
            let out = Simulator::new().run(&algo, &inst);
            let lang = ProperColoring::new(3);
            let io = IoConfig::new(&graph, &input, &out);
            assert!(
                lang.contains(&io),
                "Cole–Vishkin must properly 3-color the oriented ring on {n} nodes"
            );
        }
    }

    #[test]
    fn cole_vishkin_works_with_scrambled_ids() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
        for n in [12usize, 40, 97] {
            let graph = rlnc_graph::generators::cycle(n);
            let ids = IdAssignment::random_sparse(&graph, 10 * n as u64, &mut rng);
            let (graph, input, ids) = oriented_ring_instance_with_ids(n, ids);
            let algo = ColeVishkinRingColoring::for_max_id(10 * n as u64);
            let inst = Instance::new(&graph, &input, &ids);
            let out = Simulator::new().run(&algo, &inst);
            let lang = ProperColoring::new(3);
            assert!(lang.contains(&IoConfig::new(&graph, &input, &out)));
        }
    }

    #[test]
    fn round_complexity_is_iterations_plus_six() {
        let algo = ColeVishkinRingColoring::for_ring_size(1024);
        assert_eq!(algo.rounds(), algo.iterations() + 6);
        assert_eq!(LocalAlgorithm::radius(&algo), algo.rounds());
        assert!(LocalAlgorithm::name(&algo).contains("cole-vishkin"));
    }
}

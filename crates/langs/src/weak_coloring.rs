//! Weak 2-coloring.
//!
//! A weak coloring asks every non-isolated node to have *at least one*
//! neighbor with a different color. Naor and Stockmeyer identified weak
//! coloring as one of the rare non-trivial tasks that is both decidable
//! and constructible in constant time (on odd-degree graphs); the paper
//! cites it in §1.1 and §2.2.2 as its running example of that phenomenon.
//!
//! This module provides the language, the zero-round randomized constructor
//! (each node flips a fair coin — a node fails only when its whole closed
//! neighborhood lands on the same side, probability `2^{-deg(v)}`), and the
//! one-round [`LocalMinimumMarking`] deterministic constructor, which marks
//! local identity minima: every *marked* node is guaranteed a differently
//! colored neighbor, and every node adjacent to a local minimum is too.
//! (A fully general constant-round deterministic weak coloring needs the
//! heavier Naor–Stockmeyer machinery; the experiments only rely on the
//! language and the randomized constructor.)

use rlnc_core::prelude::*;
use rand::Rng;
use rlnc_graph::NodeId;

/// The weak 2-coloring language: every non-isolated node has a neighbor
/// with a different color.
#[derive(Debug, Clone, Copy, Default)]
pub struct WeakColoring;

impl WeakColoring {
    /// Creates the language.
    pub fn new() -> Self {
        WeakColoring
    }
}

impl LclLanguage for WeakColoring {
    fn radius(&self) -> u32 {
        1
    }

    fn is_bad_ball(&self, io: &IoConfig<'_>, v: NodeId) -> bool {
        if io.graph.degree(v) == 0 {
            return false;
        }
        let mine = io.output.get(v);
        io.graph.neighbor_ids(v).all(|w| io.output.get(w) == mine)
    }

    fn is_bad_view(&self, view: &View) -> bool {
        // SoA fast path (key equality is label equality): bad iff the
        // center has neighbors and none of them differs.
        if let Some(keys) = view.soa_outputs() {
            let mine = keys[view.center_local()];
            let (mut any, mut differs) = (0u64, 0u64);
            for i in view.center_neighbor_indices() {
                any = 1;
                differs |= u64::from(keys[i] != mine);
            }
            return any != 0 && differs == 0;
        }
        let center = view.center_local();
        let mine = view.output(center);
        let mut any = false;
        for i in view.center_neighbor_indices() {
            any = true;
            if view.output(i) != mine {
                return false;
            }
        }
        // No neighbor in the ball: isolated (at radius ≥ 1), never bad.
        any
    }

    fn name(&self) -> String {
        "weak-2-coloring".to_string()
    }
}

/// The zero-round randomized constructor: output a fair random bit.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomBitColoring;

impl RandomizedLocalAlgorithm for RandomBitColoring {
    fn radius(&self) -> u32 {
        0
    }

    fn output(&self, view: &View, coins: &Coins) -> Label {
        Label::from_bool(coins.for_center(view).random_bool(0.5))
    }

    fn name(&self) -> String {
        "random-bit-coloring".to_string()
    }
}

/// The one-round local-minimum marking: output `1` iff the center's
/// identity is smaller than all of its neighbors'. Marked nodes always have
/// a differently colored neighbor (their neighbors cannot also be local
/// minima); unmarked nodes adjacent to a local minimum do too. Nodes that
/// are neither local minima nor adjacent to one keep color `0` next to
/// same-colored neighbors — the constructor is exact on graphs (such as
/// stars, or cycles/paths whose identity order alternates often enough)
/// where every node is within one hop of a local minimum, and the tests
/// only claim that.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalMinimumMarking;

impl LocalAlgorithm for LocalMinimumMarking {
    fn radius(&self) -> u32 {
        1
    }

    fn output(&self, view: &View) -> Label {
        let mine = view.center_id();
        Label::from_bool(view.center_neighbors().iter().all(|&i| view.id(i) > mine))
    }

    fn name(&self) -> String {
        "local-minimum-marking".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlnc_core::language::bad_ball_count;
    use rlnc_core::Simulator;
    use rlnc_graph::generators::{cycle, star};
    use rlnc_graph::IdAssignment;

    #[test]
    fn weak_coloring_language_semantics() {
        let g = cycle(6);
        let x = Labeling::empty(6);
        let lang = WeakColoring::new();
        let alternating = Labeling::from_fn(&g, |v| Label::from_bool(v.0 % 2 == 0));
        assert!(lang.contains(&IoConfig::new(&g, &x, &alternating)));
        let constant = Labeling::from_fn(&g, |_| Label::from_bool(true));
        let io = IoConfig::new(&g, &x, &constant);
        assert!(!lang.contains(&io));
        assert_eq!(bad_ball_count(&lang, &io), 6);
        // A proper coloring is in particular a weak coloring.
        let proper = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0 % 2)));
        assert!(lang.contains(&IoConfig::new(&g, &x, &proper)));
    }

    #[test]
    fn isolated_nodes_are_never_bad() {
        let g = rlnc_graph::Graph::empty(3);
        let x = Labeling::empty(3);
        let y = Labeling::from_fn(&g, |_| Label::from_bool(true));
        assert!(WeakColoring::new().contains(&IoConfig::new(&g, &x, &y)));
    }

    #[test]
    fn random_bits_weakly_color_most_nodes() {
        let n = 400;
        let g = cycle(n);
        let x = Labeling::empty(n);
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        let lang = WeakColoring::new();
        let mc = rlnc_par::trials::MonteCarlo::new(100).with_seed(5);
        let summary = mc.summarize(|seed| {
            let out = Simulator::sequential().run_randomized(&RandomBitColoring, &inst, seed);
            bad_ball_count(&lang, &IoConfig::new(&g, &x, &out)) as f64 / n as f64
        });
        // On the ring the per-node failure probability is 2^{-2} = 1/4.
        assert!((summary.mean - 0.25).abs() < 0.02);
    }

    #[test]
    fn local_minimum_marking_weakly_colors_stars_and_alternating_cycles() {
        // Star: the center or a leaf is the unique local minimum; every node
        // is within one hop of it, so the weak coloring is exact.
        let g = star(9);
        let x = Labeling::empty(9);
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        let out = Simulator::new().run(&LocalMinimumMarking, &inst);
        assert!(WeakColoring::new().contains(&IoConfig::new(&g, &x, &out)));

        // Cycle with alternating-ish identities: local minima appear every
        // other node, so every node has a marked or unmarked neighbor of the
        // opposite kind.
        let g = cycle(8);
        let x = Labeling::empty(8);
        let zigzag = IdAssignment::new(vec![1, 9, 2, 10, 3, 11, 4, 12]);
        let inst = Instance::new(&g, &x, &zigzag);
        let out = Simulator::new().run(&LocalMinimumMarking, &inst);
        assert!(WeakColoring::new().contains(&IoConfig::new(&g, &x, &out)));
    }

    #[test]
    fn local_minimum_marking_fails_on_consecutive_cycles() {
        // On the consecutive-ID cycle only node 1 is a local minimum, so
        // nodes far from it are monochromatic with their neighbors — the
        // usual order-invariant-style failure.
        let g = cycle(32);
        let x = Labeling::empty(32);
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        let out = Simulator::new().run(&LocalMinimumMarking, &inst);
        let io = IoConfig::new(&g, &x, &out);
        assert!(!WeakColoring::new().contains(&io));
        assert!(bad_ball_count(&WeakColoring::new(), &io) > 20);
    }
}

//! Frugal coloring (§4).
//!
//! A `c`-frugal proper coloring is a proper coloring in which no color
//! appears more than `c` times in the neighborhood of any node. The paper
//! brings it up to illustrate that *locally fixing* a language — repairing
//! a bounded number of faulty nodes in constant time — can be non-trivial
//! even for languages in LD, which is why Corollary 1's general argument
//! (rather than ad-hoc local fixing) is needed.

use rlnc_core::prelude::*;
use rlnc_graph::NodeId;
use std::collections::HashMap;

/// The `c`-frugal proper `colors`-coloring language (radius 1).
#[derive(Debug, Clone, Copy)]
pub struct FrugalColoring {
    colors: u64,
    frugality: usize,
}

impl FrugalColoring {
    /// Proper `colors`-coloring where each color appears at most
    /// `frugality` times in any neighborhood.
    pub fn new(colors: u64, frugality: usize) -> Self {
        assert!(colors >= 1 && frugality >= 1);
        FrugalColoring { colors, frugality }
    }

    /// Palette size.
    pub fn colors(&self) -> u64 {
        self.colors
    }

    /// Maximum allowed multiplicity of a color in a neighborhood.
    pub fn frugality(&self) -> usize {
        self.frugality
    }

    /// Largest multiplicity of any color in the neighborhood of `v`.
    pub fn neighborhood_multiplicity(io: &IoConfig<'_>, v: NodeId) -> usize {
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for w in io.graph.neighbor_ids(v) {
            *counts.entry(io.output.get(w).as_u64()).or_insert(0) += 1;
        }
        counts.into_values().max().unwrap_or(0)
    }
}

impl LclLanguage for FrugalColoring {
    fn radius(&self) -> u32 {
        1
    }

    fn is_bad_ball(&self, io: &IoConfig<'_>, v: NodeId) -> bool {
        let mine = io.output.get(v);
        let c = mine.as_u64();
        if c < 1 || c > self.colors {
            return true;
        }
        if io.graph.neighbor_ids(v).any(|w| io.output.get(w) == mine) {
            return true;
        }
        Self::neighborhood_multiplicity(io, v) > self.frugality
    }

    fn is_bad_view(&self, view: &View) -> bool {
        // SoA fast path. Propriety compares packed keys (key equality is
        // label equality); multiplicity compares decoded values
        // (`Label::key_value`, which equals `as_u64`), matching the
        // fallback's grouping key on non-canonical encodings.
        if let Some(keys) = view.soa_outputs() {
            let mine = keys[view.center_local()];
            let c = Label::key_value(mine);
            if c < 1 || c > self.colors {
                return true;
            }
            let mut conflict = 0u64;
            for i in view.center_neighbor_indices() {
                conflict |= u64::from(keys[i] == mine);
            }
            if conflict != 0 {
                return true;
            }
            return view.center_neighbor_indices().any(|i| {
                view.center_neighbor_indices()
                    .filter(|&j| Label::key_value(keys[j]) == Label::key_value(keys[i]))
                    .count()
                    > self.frugality
            });
        }
        let center = view.center_local();
        let mine = view.output(center);
        let c = mine.as_u64();
        if c < 1 || c > self.colors {
            return true;
        }
        if view.center_neighbor_indices().any(|i| view.output(i) == mine) {
            return true;
        }
        // Neighborhood multiplicity without the hash map: O(deg²) pairwise
        // counting over the (bounded-degree) neighborhood, allocation-free.
        // Colors are compared by decoded value (`as_u64`), matching
        // `neighborhood_multiplicity`'s grouping key — byte equality would
        // diverge on non-canonical encodings of the same color.
        view.center_neighbor_indices().any(|i| {
            view.center_neighbor_indices()
                .filter(|&j| view.output(j).as_u64() == view.output(i).as_u64())
                .count()
                > self.frugality
        })
    }

    fn name(&self) -> String {
        format!("{}-frugal-{}-coloring", self.frugality, self.colors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlnc_graph::generators::star;

    #[test]
    fn frugal_coloring_bounds_color_multiplicity() {
        // Star with 6 leaves: center color 1. Giving all leaves color 2 is a
        // proper 2-coloring but not 2-frugal at the center.
        let g = star(7);
        let x = Labeling::empty(7);
        let all_same = Labeling::from_fn(&g, |v| Label::from_u64(if v.0 == 0 { 1 } else { 2 }));
        let io = IoConfig::new(&g, &x, &all_same);
        assert!(FrugalColoring::new(6, 6).contains(&io));
        assert!(!FrugalColoring::new(6, 2).contains(&io));
        assert_eq!(FrugalColoring::neighborhood_multiplicity(&io, rlnc_graph::NodeId(0)), 6);
        // Spreading the leaves over three colors is 2-frugal.
        let spread = Labeling::from_fn(&g, |v| {
            Label::from_u64(if v.0 == 0 { 1 } else { 2 + u64::from(v.0 % 3) })
        });
        let io = IoConfig::new(&g, &x, &spread);
        assert!(FrugalColoring::new(6, 2).contains(&io));
    }

    #[test]
    fn view_native_verdict_groups_colors_by_decoded_value() {
        use rlnc_core::view::View;
        use rlnc_graph::IdAssignment;
        // Two leaves carry the same color 2 under different byte encodings
        // ([2] vs [0, 2]); the multiplicity count must still see one color
        // class of size 2 on both verdict paths.
        let g = star(3);
        let x = Labeling::empty(3);
        let mut y = Labeling::new(vec![
            Label::from_u64(1),
            Label::from_u64(2),
            Label::from_bytes(vec![0u8, 2]),
        ]);
        let lang = FrugalColoring::new(3, 1);
        let ids = IdAssignment::consecutive(&g);
        let center = rlnc_graph::NodeId(0);
        {
            let io = IoConfig::new(&g, &x, &y);
            assert!(lang.is_bad_ball(&io, center), "multiplicity 2 > frugality 1");
            let view = View::collect_io(&io, &ids, center, 1);
            assert_eq!(lang.is_bad_view(&view), lang.is_bad_ball(&io, center));
        }
        // Distinct decoded colors: good on both paths.
        y.set(rlnc_graph::NodeId(2), Label::from_u64(3));
        let io = IoConfig::new(&g, &x, &y);
        assert!(!lang.is_bad_ball(&io, center));
        let view = View::collect_io(&io, &ids, center, 1);
        assert!(!lang.is_bad_view(&view));
    }

    #[test]
    fn frugal_coloring_still_requires_properness_and_range() {
        let g = star(4);
        let x = Labeling::empty(4);
        let conflict = Labeling::from_fn(&g, |_| Label::from_u64(1));
        assert!(!FrugalColoring::new(4, 3).contains(&IoConfig::new(&g, &x, &conflict)));
        let out_of_range = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0) + 7));
        assert!(!FrugalColoring::new(4, 3).contains(&IoConfig::new(&g, &x, &out_of_range)));
        assert_eq!(FrugalColoring::new(4, 3).colors(), 4);
        assert_eq!(FrugalColoring::new(4, 3).frugality(), 3);
        assert!(LclLanguage::name(&FrugalColoring::new(4, 3)).contains("frugal"));
    }
}

//! Frugal coloring (§4).
//!
//! A `c`-frugal proper coloring is a proper coloring in which no color
//! appears more than `c` times in the neighborhood of any node. The paper
//! brings it up to illustrate that *locally fixing* a language — repairing
//! a bounded number of faulty nodes in constant time — can be non-trivial
//! even for languages in LD, which is why Corollary 1's general argument
//! (rather than ad-hoc local fixing) is needed.

use rlnc_core::prelude::*;
use rlnc_graph::NodeId;
use std::collections::HashMap;

/// The `c`-frugal proper `colors`-coloring language (radius 1).
#[derive(Debug, Clone, Copy)]
pub struct FrugalColoring {
    colors: u64,
    frugality: usize,
}

impl FrugalColoring {
    /// Proper `colors`-coloring where each color appears at most
    /// `frugality` times in any neighborhood.
    pub fn new(colors: u64, frugality: usize) -> Self {
        assert!(colors >= 1 && frugality >= 1);
        FrugalColoring { colors, frugality }
    }

    /// Palette size.
    pub fn colors(&self) -> u64 {
        self.colors
    }

    /// Maximum allowed multiplicity of a color in a neighborhood.
    pub fn frugality(&self) -> usize {
        self.frugality
    }

    /// Largest multiplicity of any color in the neighborhood of `v`.
    pub fn neighborhood_multiplicity(io: &IoConfig<'_>, v: NodeId) -> usize {
        let mut counts: HashMap<u64, usize> = HashMap::new();
        for w in io.graph.neighbor_ids(v) {
            *counts.entry(io.output.get(w).as_u64()).or_insert(0) += 1;
        }
        counts.into_values().max().unwrap_or(0)
    }
}

impl LclLanguage for FrugalColoring {
    fn radius(&self) -> u32 {
        1
    }

    fn is_bad_ball(&self, io: &IoConfig<'_>, v: NodeId) -> bool {
        let mine = io.output.get(v);
        let c = mine.as_u64();
        if c < 1 || c > self.colors {
            return true;
        }
        if io.graph.neighbor_ids(v).any(|w| io.output.get(w) == mine) {
            return true;
        }
        Self::neighborhood_multiplicity(io, v) > self.frugality
    }

    fn name(&self) -> String {
        format!("{}-frugal-{}-coloring", self.frugality, self.colors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlnc_graph::generators::star;

    #[test]
    fn frugal_coloring_bounds_color_multiplicity() {
        // Star with 6 leaves: center color 1. Giving all leaves color 2 is a
        // proper 2-coloring but not 2-frugal at the center.
        let g = star(7);
        let x = Labeling::empty(7);
        let all_same = Labeling::from_fn(&g, |v| Label::from_u64(if v.0 == 0 { 1 } else { 2 }));
        let io = IoConfig::new(&g, &x, &all_same);
        assert!(FrugalColoring::new(6, 6).contains(&io));
        assert!(!FrugalColoring::new(6, 2).contains(&io));
        assert_eq!(FrugalColoring::neighborhood_multiplicity(&io, rlnc_graph::NodeId(0)), 6);
        // Spreading the leaves over three colors is 2-frugal.
        let spread = Labeling::from_fn(&g, |v| {
            Label::from_u64(if v.0 == 0 { 1 } else { 2 + u64::from(v.0 % 3) })
        });
        let io = IoConfig::new(&g, &x, &spread);
        assert!(FrugalColoring::new(6, 2).contains(&io));
    }

    #[test]
    fn frugal_coloring_still_requires_properness_and_range() {
        let g = star(4);
        let x = Labeling::empty(4);
        let conflict = Labeling::from_fn(&g, |_| Label::from_u64(1));
        assert!(!FrugalColoring::new(4, 3).contains(&IoConfig::new(&g, &x, &conflict)));
        let out_of_range = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0) + 7));
        assert!(!FrugalColoring::new(4, 3).contains(&IoConfig::new(&g, &x, &out_of_range)));
        assert_eq!(FrugalColoring::new(4, 3).colors(), 4);
        assert_eq!(FrugalColoring::new(4, 3).frugality(), 3);
        assert!(LclLanguage::name(&FrugalColoring::new(4, 3)).contains("frugal"));
    }
}

//! Proper `c`-coloring: the canonical LCL language of the paper.
//!
//! A configuration is a proper `c`-coloring when every node outputs a color
//! in `{1, ..., c}` different from all of its neighbors' colors. The bad
//! balls have radius 1: a ball is bad when the center's color is out of
//! range or collides with a neighbor. §4 of the paper uses (Δ+1)-coloring
//! and 3-coloring of the ring as its running examples.

use rlnc_core::prelude::*;
use rlnc_graph::NodeId;

/// The proper `c`-coloring language (colors are `1..=c`).
#[derive(Debug, Clone, Copy)]
pub struct ProperColoring {
    colors: u64,
}

impl ProperColoring {
    /// Proper coloring with `colors` available colors.
    pub fn new(colors: u64) -> Self {
        assert!(colors >= 1);
        ProperColoring { colors }
    }

    /// The `(Δ+1)`-coloring language for a graph of maximum degree `delta`.
    pub fn delta_plus_one(delta: usize) -> Self {
        ProperColoring::new(delta as u64 + 1)
    }

    /// Number of available colors.
    pub fn colors(&self) -> u64 {
        self.colors
    }

    /// Returns `true` if `label` encodes a color in range.
    pub fn in_range(&self, label: &Label) -> bool {
        let c = label.as_u64();
        c >= 1 && c <= self.colors
    }
}

impl LclLanguage for ProperColoring {
    fn radius(&self) -> u32 {
        1
    }

    fn is_bad_ball(&self, io: &IoConfig<'_>, v: NodeId) -> bool {
        let mine = io.output.get(v);
        if !self.in_range(mine) {
            return true;
        }
        io.graph.neighbor_ids(v).any(|w| io.output.get(w) == mine)
    }

    fn is_bad_view(&self, view: &View) -> bool {
        // SoA fast path: key equality is label equality, so the branchless
        // accumulation over the packed lane is bit-identical to the
        // early-exit byte comparison below.
        if let Some(keys) = view.soa_outputs() {
            let mine = keys[view.center_local()];
            let color = Label::key_value(mine);
            if color < 1 || color > self.colors {
                return true;
            }
            let mut bad = 0u64;
            for i in view.center_neighbor_indices() {
                bad |= u64::from(keys[i] == mine);
            }
            return bad != 0;
        }
        let mine = view.output(view.center_local());
        if !self.in_range(mine) {
            return true;
        }
        view.center_neighbor_indices().any(|i| view.output(i) == mine)
    }

    fn name(&self) -> String {
        format!("{}-coloring", self.colors)
    }
}

/// The one-round deterministic decider for proper coloring (the language is
/// in LD(1): compare your color with your neighbors').
#[derive(Debug, Clone, Copy)]
pub struct ColoringDecider {
    colors: u64,
}

impl ColoringDecider {
    /// Decider for proper `colors`-coloring.
    pub fn new(colors: u64) -> Self {
        ColoringDecider { colors }
    }
}

impl LocalDecider for ColoringDecider {
    fn radius(&self) -> u32 {
        1
    }

    fn accepts(&self, view: &View) -> bool {
        if let Some(keys) = view.soa_outputs() {
            let mine = keys[view.center_local()];
            let c = Label::key_value(mine);
            if c < 1 || c > self.colors {
                return false;
            }
            let mut collides = 0u64;
            for i in view.center_neighbor_indices() {
                collides |= u64::from(keys[i] == mine);
            }
            return collides == 0;
        }
        let mine = view.output(view.center_local());
        let c = mine.as_u64();
        if c < 1 || c > self.colors {
            return false;
        }
        view.center_neighbor_indices().all(|i| view.output(i) != mine)
    }

    fn name(&self) -> String {
        format!("{}-coloring-decider", self.colors)
    }
}

/// A *global* greedy coloring: collect the radius-`t` ball and greedily
/// color the whole ball by increasing identity, then output the color the
/// center received. When `t` is at least the diameter this is a correct
/// `(Δ+1)`-coloring (every node simulates the same global greedy run); for
/// smaller `t` it is the natural "non-local" baseline whose failures the
/// lower-bound experiments exhibit.
#[derive(Debug, Clone, Copy)]
pub struct GlobalGreedyColoring {
    radius: u32,
    colors: u64,
}

impl GlobalGreedyColoring {
    /// Greedy coloring over radius-`radius` views with `colors` colors.
    pub fn new(radius: u32, colors: u64) -> Self {
        GlobalGreedyColoring { radius, colors }
    }
}

impl LocalAlgorithm for GlobalGreedyColoring {
    fn radius(&self) -> u32 {
        self.radius
    }

    fn output(&self, view: &View) -> Label {
        // Order the ball's nodes by identity and greedily assign the
        // smallest color not used by already-colored neighbors.
        let n = view.len();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|&i| view.id(i));
        let graph = view.local_graph();
        let mut colors = vec![0u64; n];
        for &i in &order {
            let mut used: Vec<u64> = graph
                .neighbor_ids(NodeId::from_index(i))
                .map(|w| colors[w.index()])
                .filter(|&c| c != 0)
                .collect();
            used.sort_unstable();
            let mut candidate = 1u64;
            for c in used {
                if c == candidate {
                    candidate += 1;
                }
            }
            colors[i] = candidate.min(self.colors);
        }
        Label::from_u64(colors[view.center_local()])
    }

    fn name(&self) -> String {
        format!("global-greedy-{}-coloring(t={})", self.colors, self.radius)
    }
}

/// The canonical *order-invariant* constant-round coloring attempt: output
/// the rank of the center's identity within its radius-`t` ball, modulo the
/// number of colors (plus one). On the consecutive-identity cycle of §4
/// every node far from the identity seam has the same rank, so all those
/// nodes receive the same color — the concrete failure mode behind
/// Corollary 1's application.
#[derive(Debug, Clone, Copy)]
pub struct RankColoring {
    radius: u32,
    colors: u64,
}

impl RankColoring {
    /// Rank-based coloring over radius-`radius` views with `colors` colors.
    pub fn new(radius: u32, colors: u64) -> Self {
        assert!(colors >= 1);
        RankColoring { radius, colors }
    }
}

impl LocalAlgorithm for RankColoring {
    fn radius(&self) -> u32 {
        self.radius
    }

    fn output(&self, view: &View) -> Label {
        Label::from_u64((view.center_rank() as u64 % self.colors) + 1)
    }

    fn name(&self) -> String {
        format!("rank-{}-coloring(t={})", self.colors, self.radius)
    }
}

/// Counts the nodes that are improperly colored (their radius-1 ball is bad).
pub fn improperly_colored_nodes(language: &ProperColoring, io: &IoConfig<'_>) -> usize {
    rlnc_core::language::bad_ball_count(language, io)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlnc_core::decision::decide;
    use rlnc_core::Simulator;
    use rlnc_graph::generators::{cycle, grid, path};
    use rlnc_graph::IdAssignment;

    #[test]
    fn proper_coloring_language_detects_conflicts_and_range() {
        let g = cycle(6);
        let x = Labeling::empty(6);
        let lang = ProperColoring::new(3);
        let proper = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0 % 2) + 1));
        assert!(lang.contains(&IoConfig::new(&g, &x, &proper)));
        let out_of_range = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0 % 2) * 4 + 1));
        assert!(!lang.contains(&IoConfig::new(&g, &x, &out_of_range)));
        let monochrome = Labeling::from_fn(&g, |_| Label::from_u64(2));
        let io = IoConfig::new(&g, &x, &monochrome);
        assert!(!lang.contains(&io));
        assert_eq!(improperly_colored_nodes(&lang, &io), 6);
        assert_eq!(LclLanguage::name(&lang), "3-coloring");
        assert_eq!(ProperColoring::delta_plus_one(2).colors(), 3);
    }

    #[test]
    fn decider_agrees_with_language_on_cycles() {
        let g = cycle(9);
        let x = Labeling::empty(9);
        let ids = IdAssignment::consecutive(&g);
        let lang = ProperColoring::new(3);
        let decider = ColoringDecider::new(3);
        for (name, labeling) in [
            ("proper", Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0 % 3) + 1))),
            ("monochrome", Labeling::from_fn(&g, |_| Label::from_u64(1))),
            ("out-of-range", Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0) + 1))),
        ] {
            let io = IoConfig::new(&g, &x, &labeling);
            assert_eq!(
                lang.contains(&io),
                decide(&decider, &io, &ids),
                "decider disagrees with language on {name}"
            );
        }
    }

    #[test]
    fn global_greedy_colors_properly_when_radius_covers_graph() {
        for graph in [cycle(12), path(9), grid(4, 4)] {
            let n = graph.node_count();
            let x = Labeling::empty(n);
            let ids = IdAssignment::random_permutation(&graph, &mut rand::rng());
            let inst = Instance::new(&graph, &x, &ids);
            let delta = graph.max_degree();
            let algo = GlobalGreedyColoring::new(32, delta as u64 + 1);
            let out = Simulator::new().run(&algo, &inst);
            let lang = ProperColoring::delta_plus_one(delta);
            assert!(
                lang.contains(&IoConfig::new(&graph, &x, &out)),
                "global greedy must be proper when it sees the whole graph"
            );
        }
    }

    #[test]
    fn global_greedy_with_small_radius_can_fail() {
        let g = cycle(64);
        let x = Labeling::empty(64);
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        let algo = GlobalGreedyColoring::new(1, 3);
        let out = Simulator::new().run(&algo, &inst);
        let lang = ProperColoring::new(3);
        assert!(
            !lang.contains(&IoConfig::new(&g, &x, &out)),
            "a 1-round greedy cannot 3-color the consecutive-ID cycle"
        );
    }

    #[test]
    fn rank_coloring_is_nearly_constant_on_consecutive_id_cycles() {
        // The §4 argument: all nodes whose ball avoids the identity seam
        // have identical rank, hence identical color.
        let n = 128;
        let t = 2;
        let g = cycle(n);
        let x = Labeling::empty(n);
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        let algo = RankColoring::new(t, 3);
        let out = Simulator::new().run(&algo, &inst);
        let most_common = {
            let mut counts = std::collections::HashMap::new();
            for v in g.nodes() {
                *counts.entry(out.get(v).as_u64()).or_insert(0usize) += 1;
            }
            counts.into_values().max().unwrap()
        };
        assert!(
            most_common >= n - (2 * t as usize + 1),
            "at least n - (2t+1) nodes must share a color, got {most_common}"
        );
        let lang = ProperColoring::new(3);
        let bad = improperly_colored_nodes(&lang, &IoConfig::new(&g, &x, &out));
        assert!(bad >= n - 2 * (2 * t as usize + 1), "rank coloring must be massively improper");
    }

    #[test]
    fn rank_coloring_is_order_invariant() {
        use rlnc_core::order_invariant::{check_order_invariance, standard_monotone_maps};
        let g = cycle(20);
        let x = Labeling::empty(20);
        let ids = IdAssignment::consecutive(&g);
        let algo = RankColoring::new(1, 3);
        let maps = standard_monotone_maps();
        let refs: Vec<&dyn Fn(u64) -> u64> =
            maps.iter().map(|m| m.as_ref() as &dyn Fn(u64) -> u64).collect();
        assert!(check_order_invariance(&algo, &g, &x, &ids, &refs));
    }
}

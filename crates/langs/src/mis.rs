//! Maximal independent set (MIS): language and constructors.
//!
//! The MIS language is locally checkable with radius 1: a ball is bad when
//! the center is in the set together with a neighbor (independence
//! violated), or when the center is outside the set and so are all of its
//! neighbors (maximality violated). The classical constructor is Luby's
//! randomized algorithm, implemented here as a phase-parameterized LOCAL
//! algorithm: simulating `k` phases requires a radius-`k` view.

use rlnc_core::prelude::*;
use rand::Rng;
use rlnc_graph::NodeId;

/// The maximal-independent-set language.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaximalIndependentSet;

impl MaximalIndependentSet {
    /// Creates the language.
    pub fn new() -> Self {
        MaximalIndependentSet
    }

    /// Nodes currently in the set.
    pub fn members(io: &IoConfig<'_>) -> Vec<NodeId> {
        io.graph.nodes().filter(|&v| io.output.get(v).as_bool()).collect()
    }
}

impl LclLanguage for MaximalIndependentSet {
    fn radius(&self) -> u32 {
        1
    }

    fn is_bad_ball(&self, io: &IoConfig<'_>, v: NodeId) -> bool {
        let in_set = io.output.get(v).as_bool();
        if in_set {
            // Independence: no neighbor may be in the set.
            io.graph.neighbor_ids(v).any(|w| io.output.get(w).as_bool())
        } else {
            // Maximality: some neighbor must be in the set.
            !io.graph.neighbor_ids(v).any(|w| io.output.get(w).as_bool())
        }
    }

    fn is_bad_view(&self, view: &View) -> bool {
        // SoA fast path: a packed key's value part is nonzero exactly when
        // the label decodes to `true`, so membership tests stay exact.
        if let Some(keys) = view.soa_outputs() {
            let in_set = Label::key_value(keys[view.center_local()]) != 0;
            let mut neighbor = 0u64;
            for i in view.center_neighbor_indices() {
                neighbor |= u64::from(Label::key_value(keys[i]) != 0);
            }
            let neighbor_in_set = neighbor != 0;
            return if in_set { neighbor_in_set } else { !neighbor_in_set };
        }
        let in_set = view.output(view.center_local()).as_bool();
        let neighbor_in_set = view
            .center_neighbor_indices()
            .any(|i| view.output(i).as_bool());
        if in_set {
            neighbor_in_set
        } else {
            !neighbor_in_set
        }
    }

    fn name(&self) -> String {
        "maximal-independent-set".to_string()
    }
}

/// Luby's randomized MIS, simulated for a fixed number of phases.
///
/// In each phase every undecided node draws a random priority; a node joins
/// the set if its priority is strictly larger than all undecided neighbors'
/// priorities, and nodes adjacent to a new member drop out. After
/// `O(log n)` phases all nodes are decided with high probability; nodes
/// still undecided after the final phase conservatively stay out of the set
/// (which can only violate maximality, never independence — the experiments
/// measure how often that happens).
#[derive(Debug, Clone, Copy)]
pub struct LubyMis {
    phases: u32,
}

impl LubyMis {
    /// Luby's algorithm with the given number of phases (= view radius).
    pub fn new(phases: u32) -> Self {
        assert!(phases >= 1);
        LubyMis { phases }
    }

    /// A phase count of `2 log2 n + 4`, the usual with-high-probability
    /// setting.
    pub fn for_graph_size(n: usize) -> Self {
        LubyMis::new(2 * (usize::BITS - n.leading_zeros()) + 4)
    }

    /// Number of phases simulated.
    pub fn phases(&self) -> u32 {
        self.phases
    }

    /// The random priority of node at local index `i` in phase `phase`.
    fn priority(view: &View, coins: &Coins, i: usize, phase: u32) -> u64 {
        let mut rng = coins.for_view_node(view, i);
        // Advance the stream to the phase: draw `phase + 1` values and use
        // the last one, so phases are independent and all simulating nodes
        // agree on every node's priority.
        let mut value = 0u64;
        for _ in 0..=phase {
            value = rng.random();
        }
        value
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum MisStatus {
    Undecided,
    In,
    Out,
}

impl RandomizedLocalAlgorithm for LubyMis {
    fn radius(&self) -> u32 {
        self.phases
    }

    fn output(&self, view: &View, coins: &Coins) -> Label {
        let n = view.len();
        let graph = view.local_graph();
        let mut status = vec![MisStatus::Undecided; n];
        for phase in 0..self.phases {
            let priorities: Vec<u64> = (0..n).map(|i| Self::priority(view, coins, i, phase)).collect();
            let mut joining = vec![false; n];
            for i in 0..n {
                if status[i] != MisStatus::Undecided {
                    continue;
                }
                let wins = graph.neighbor_ids(NodeId::from_index(i)).all(|w| {
                    status[w.index()] != MisStatus::Undecided
                        || priorities[w.index()] < priorities[i]
                        || (priorities[w.index()] == priorities[i] && view.id(w.index()) < view.id(i))
                });
                joining[i] = wins;
            }
            for i in 0..n {
                if joining[i] {
                    status[i] = MisStatus::In;
                }
            }
            for i in 0..n {
                if status[i] == MisStatus::Undecided
                    && graph
                        .neighbor_ids(NodeId::from_index(i))
                        .any(|w| status[w.index()] == MisStatus::In)
                {
                    status[i] = MisStatus::Out;
                }
            }
        }
        Label::from_bool(status[view.center_local()] == MisStatus::In)
    }

    fn name(&self) -> String {
        format!("luby-mis({} phases)", self.phases)
    }
}

/// The order-invariant baseline: join the set iff the center's identity is
/// a local minimum among its neighbors. Always independent; maximal only on
/// graphs where every node is adjacent to a local minimum (true on paths
/// and cycles with consecutive identities, false in general) — the kind of
/// constant-round attempt whose failures the lower bounds quantify.
#[derive(Debug, Clone, Copy, Default)]
pub struct LocalMinimumMis;

impl LocalAlgorithm for LocalMinimumMis {
    fn radius(&self) -> u32 {
        1
    }

    fn output(&self, view: &View) -> Label {
        let mine = view.center_id();
        let is_min = view.center_neighbors().iter().all(|&i| view.id(i) > mine);
        Label::from_bool(is_min)
    }

    fn name(&self) -> String {
        "local-minimum-mis".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlnc_core::Simulator;
    use rlnc_graph::generators::{cycle, grid, random_regular};
    use rlnc_graph::IdAssignment;
    use rlnc_par::rng::SeedSequence;

    #[test]
    fn mis_language_checks_independence_and_maximality() {
        let g = cycle(6);
        let x = Labeling::empty(6);
        let lang = MaximalIndependentSet::new();
        // {0, 2, 4} is a maximal independent set of C_6.
        let good = Labeling::from_fn(&g, |v| Label::from_bool(v.0 % 2 == 0));
        assert!(lang.contains(&IoConfig::new(&g, &x, &good)));
        // {0, 1} violates independence.
        let adjacent = Labeling::from_fn(&g, |v| Label::from_bool(v.0 <= 1));
        assert!(!lang.contains(&IoConfig::new(&g, &x, &adjacent)));
        // {} violates maximality everywhere.
        let empty = Labeling::from_fn(&g, |_| Label::from_bool(false));
        let io = IoConfig::new(&g, &x, &empty);
        assert!(!lang.contains(&io));
        assert_eq!(rlnc_core::language::bad_ball_count(&lang, &io), 6);
        assert_eq!(MaximalIndependentSet::members(&IoConfig::new(&g, &x, &good)).len(), 3);
    }

    #[test]
    fn luby_mis_produces_maximal_independent_sets_whp() {
        let mut rng = rand::rng();
        for graph in [cycle(64), grid(8, 8), random_regular(60, 3, &mut rng)] {
            let n = graph.node_count();
            let x = Labeling::empty(n);
            let ids = IdAssignment::consecutive(&graph);
            let inst = Instance::new(&graph, &x, &ids);
            let algo = LubyMis::for_graph_size(n);
            let lang = MaximalIndependentSet::new();
            let out = Simulator::new().run_randomized(&algo, &inst, SeedSequence::new(5).child(1));
            assert!(
                lang.contains(&IoConfig::new(&graph, &x, &out)),
                "Luby with {} phases should finish on {} nodes",
                algo.phases(),
                n
            );
        }
    }

    #[test]
    fn luby_success_probability_grows_with_phases() {
        let g = cycle(64);
        let x = Labeling::empty(64);
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        let lang = MaximalIndependentSet::new();
        let few = Simulator::new().construction_success(&LubyMis::new(1), &inst, &lang, 300, 3);
        let many = Simulator::new().construction_success(&LubyMis::new(12), &inst, &lang, 300, 3);
        assert!(many.p_hat >= few.p_hat);
        assert!(many.p_hat > 0.95);
    }

    #[test]
    fn local_minimum_mis_is_independent_but_not_always_maximal() {
        let g = cycle(10);
        let x = Labeling::empty(10);
        // Identity assignment with a long increasing run: nodes in the
        // middle of the run have no local-minimum neighbor.
        let ids = IdAssignment::consecutive(&g);
        let inst = Instance::new(&g, &x, &ids);
        let out = Simulator::new().run(&LocalMinimumMis, &inst);
        let io = IoConfig::new(&g, &x, &out);
        let lang = MaximalIndependentSet::new();
        // Independence holds: no two adjacent members.
        for (u, v) in g.edges() {
            assert!(!(io.output.get(u).as_bool() && io.output.get(v).as_bool()));
        }
        // Maximality fails on the consecutive-ID cycle (only node 1 is a
        // local minimum... node with id 1 is; nodes far from it are
        // uncovered).
        assert!(!lang.contains(&io));
    }
}

//! # rlnc-langs — concrete distributed languages, constructors, and deciders
//!
//! The paper motivates its theory with a zoo of classical LOCAL-model
//! tasks: proper and `(Δ+1)`-coloring, 3-coloring of rings, weak coloring,
//! maximal independent set, maximal matching, minimal dominating set,
//! `amos` ("at most one selected"), `majority`, frugal coloring, and the
//! constructive Lovász Local Lemma. This crate implements each of them as a
//! [`rlnc_core::LclLanguage`] or [`rlnc_core::DistributedLanguage`],
//! together with the construction algorithms and local deciders the
//! experiments need:
//!
//! * [`coloring`] — proper `c`-coloring, greedy and rank-based colorers,
//!   the one-round decider.
//! * [`cole_vishkin`] — the Cole–Vishkin / Linial `O(log* n)` 3-coloring of
//!   oriented rings.
//! * [`random_coloring`] — the zero-round uniformly random coloring
//!   (the ε-slack constructor of §1.1).
//! * [`weak_coloring`] — weak 2-coloring and simple constructors.
//! * [`mis`] — maximal independent set and Luby's algorithm.
//! * [`matching`] — maximal matching.
//! * [`dominating`] — (minimal) dominating sets.
//! * [`amos`] — the `amos` language and its golden-ratio randomized decider.
//! * [`majority`] — the `majority` language (constructible, not locally
//!   decidable).
//! * [`lll`] — a neighborhood-monochromaticity LLL instance with a
//!   resampling constructor.
//! * [`frugal`] — frugal coloring (§4's example of a language where local
//!   fixing is non-trivial).
//! * [`faulty`] — fault-injection wrappers used to realize constructors
//!   with a prescribed failure probability β for the derandomization
//!   experiments.
//! * [`registry`] — the language-case registry: every language above as an
//!   enumerable `(language, constructor, decider)` bundle
//!   ([`CaseRegistry`]), the sweep engine's `language-matrix` axis and the
//!   derandomization pipeline's case source.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amos;
pub mod coloring;
pub mod cole_vishkin;
pub mod dominating;
pub mod faulty;
pub mod frugal;
pub mod lll;
pub mod majority;
pub mod matching;
pub mod mis;
pub mod random_coloring;
pub mod registry;
pub mod weak_coloring;

pub use amos::{Amos, AmosGoldenDecider, BernoulliSelection, GOLDEN_GUARANTEE};
pub use coloring::{ColoringDecider, GlobalGreedyColoring, ProperColoring, RankColoring};
pub use cole_vishkin::{oriented_ring_instance, ColeVishkinRingColoring};
pub use dominating::{DominatingSet, MinIdPointerDominatingSet, MinimalDominatingSet};
pub use faulty::{CorruptLowestIds, FaultyConstructor};
pub use frugal::FrugalColoring;
pub use lll::{NeighborhoodLll, ResamplingLll};
pub use majority::{AllSelected, Majority, OneSidedLocalMajorityDecider};
pub use matching::{MaximalMatching, ProposalMatching, RandomizedMatching};
pub use mis::{LocalMinimumMis, LubyMis, MaximalIndependentSet};
pub use random_coloring::RandomColoring;
pub use registry::{CaseId, CaseParams, CaseRegistry, InputKind, LanguageCase};
pub use weak_coloring::{LocalMinimumMarking, WeakColoring};

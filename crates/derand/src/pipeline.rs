//! The staged, engine-backed Theorem-1 pipeline and its typed artifacts.
//!
//! Stage order follows the proof: **ramsey** (Claim 1) → **hard instances**
//! (Claim 2) → **boosted disjoint union** (Claim 3) → **connected gluing**
//! (Claims 4–5). Each stage returns an owned artifact that can be cached
//! across trial batches, inspected, and fed to the next stage; all
//! Monte-Carlo estimation routes through `rlnc-engine` plans built once per
//! composite instance.
//!
//! ## Determinism contract
//!
//! Every estimator reproduces the legacy `rlnc_core::derand` streams
//! bit-for-bit:
//!
//! * [`DerandPipeline::failure_probability`] matches
//!   `HardInstanceSearch::failure_probability` (cached views + the
//!   `MonteCarlo` `(master, trial)` derivation),
//! * [`DerandPipeline::union_acceptance`] matches
//!   `boosting::disjoint_union_acceptance`,
//! * [`DerandPipeline::glued_acceptance`] /
//!   [`DerandPipeline::glued_far_acceptance`] match the
//!   `GluingExperiment` estimators (the far event's per-trial BFS is
//!   replaced by a participation set computed once — same verdicts, since a
//!   node's coins depend only on `(trial seed, node)`).
//!
//! The engine equivalence suite (`crates/engine/tests/equivalence.rs`)
//! pins these claims down at seed 0 and beyond.

use std::collections::HashMap;

use crate::decider::OneSidedLclDecider;
use rlnc_core::algorithm::{LocalAlgorithm, RandomizedLocalAlgorithm};
use rlnc_core::config::{Instance, IoConfig};
use rlnc_core::decision::RandomizedDecider;
use rlnc_core::derand::gluing::{anchor_candidates, anchor_count, GluingExperiment};
use rlnc_core::derand::hard_instances::HardInstance;
use rlnc_core::derand::ramsey::{collect_templates, consistent_id_set, OrderInvariantLift};
use rlnc_core::language::{DistributedLanguage, LclLanguage};
use rlnc_engine::{BatchRunner, ExecutionPlan, GluedPlan, PlanCache, UnionPlan};
use rlnc_graph::NodeId;
use rlnc_par::stats::Estimate;

/// The quantitative knobs of the Theorem-1 argument.
#[derive(Debug, Clone, Copy)]
pub struct PipelineParams {
    /// The success probability `r` the hypothetical constructor claims.
    pub r: f64,
    /// The decider's guarantee `p > 1/2`.
    pub p: f64,
    /// The constructor's radius `t` (enters the anchor separation).
    pub t: u32,
    /// The decider's radius `t'`.
    pub t_prime: u32,
}

impl PipelineParams {
    /// The exclusion radius `t + t'` of the far-from-anchor events.
    pub fn exclusion_radius(&self) -> u32 {
        self.t + self.t_prime
    }

    /// `µ = ⌈1/(2p−1)⌉`, the Claim-4 anchor count.
    pub fn mu(&self) -> usize {
        anchor_count(self.p)
    }
}

/// The registry's per-case knobs are the same quantities; lifting them is
/// what lets `rlnc_langs::registry` cases drive the pipeline directly.
impl From<rlnc_langs::registry::CaseParams> for PipelineParams {
    fn from(params: rlnc_langs::registry::CaseParams) -> PipelineParams {
        PipelineParams {
            r: params.r,
            p: params.p,
            t: params.t,
            t_prime: params.t_prime,
        }
    }
}

/// Stage-1 artifact (Claim 1 / Appendix A): the Ramsey-refined identity
/// set on which the wrapped algorithm is consistent for every observed
/// ball type.
#[derive(Debug, Clone)]
pub struct RamseyStage {
    /// The refined (sorted) identity set `U`.
    pub id_set: Vec<u64>,
    /// Size of the universe the refinement started from.
    pub universe_size: usize,
    /// Number of distinct ball templates consistency was enforced on.
    pub templates: usize,
}

impl RamseyStage {
    /// Fraction of the universe that survived the refinement.
    pub fn survival_rate(&self) -> f64 {
        self.id_set.len() as f64 / self.universe_size.max(1) as f64
    }
}

/// Stage-2 artifact (Claim 2): one failing instance per candidate
/// algorithm, identity ranges pairwise disjoint.
#[derive(Debug, Clone)]
pub struct HardInstanceStage {
    /// The hard-instance pool, in algorithm order.
    pub pool: Vec<HardInstance>,
    /// Algorithms for which no failing candidate was found.
    pub missing: usize,
}

/// Stage-3 artifact (Claim 3): the disjoint union of `ν` hard instances,
/// planned once for batched evaluation.
#[derive(Debug, Clone)]
pub struct UnionStage {
    /// Number of components `ν`.
    pub nu: usize,
    /// The engine plan over the combined CSR (per-component offsets
    /// included).
    pub plan: UnionPlan,
}

/// Stage-4 artifact (Claims 4–5): the connected gluing, planned once, with
/// the far-from-anchors participation set precomputed.
#[derive(Debug, Clone)]
pub struct GluedStage {
    /// Number of glued parts `ν'`.
    pub nu: usize,
    /// The Claim-4 anchor count `µ` of the pipeline's `p`.
    pub mu: usize,
    /// The engine plan (anchors, exclusion radius, participants baked in).
    pub plan: GluedPlan,
    /// The glued instance itself, for structural inspection (connectivity,
    /// degree bound) and export.
    pub instance: HardInstance,
}

/// The staged derandomization pipeline, generic over the language and the
/// constructor/decider pair under attack.
#[derive(Debug, Clone, Copy)]
pub struct DerandPipeline<'a, C: ?Sized, D: ?Sized, L: ?Sized> {
    constructor: &'a C,
    decider: &'a D,
    language: &'a L,
    params: PipelineParams,
    runner: BatchRunner,
}

impl<'a, C, D, L> DerandPipeline<'a, C, D, L>
where
    C: RandomizedLocalAlgorithm + ?Sized,
    D: RandomizedDecider + ?Sized,
    L: DistributedLanguage + ?Sized,
{
    /// Assembles the pipeline around one language / constructor / decider
    /// triple.
    pub fn new(constructor: &'a C, decider: &'a D, language: &'a L, params: PipelineParams) -> Self {
        DerandPipeline {
            constructor,
            decider,
            language,
            params,
            runner: BatchRunner::new(),
        }
    }

    /// Overrides the batch runner (e.g. [`BatchRunner::sequential`] for
    /// scheduling-pinned comparisons; results are identical either way).
    pub fn with_runner(mut self, runner: BatchRunner) -> Self {
        self.runner = runner;
        self
    }

    /// The pipeline's quantitative knobs.
    pub fn params(&self) -> PipelineParams {
        self.params
    }

    // ---- Stage 1: Ramsey lift (Claim 1 / Appendix A) ------------------

    /// The free-function [`ramsey_stage`], as a pipeline method for staged
    /// call sites. The stage reads none of the constructor/decider/language
    /// state — Claim 1 is about the wrapped deterministic algorithm alone —
    /// so callers that only need the lift (e.g. E8) can use the free
    /// function directly.
    pub fn ramsey_stage<A: LocalAlgorithm + ?Sized>(
        &self,
        algo: &A,
        probes: &[Instance<'_>],
        universe: &[u64],
        samples_per_round: usize,
        seed: u64,
    ) -> RamseyStage {
        ramsey_stage(algo, probes, universe, samples_per_round, seed)
    }

    /// [`lift_agrees_with`] using this pipeline's runner.
    pub fn lift_agrees<A: LocalAlgorithm + ?Sized>(
        &self,
        algo: &A,
        stage: &RamseyStage,
        instance: &Instance<'_>,
    ) -> bool {
        lift_agrees_with(&self.runner, algo, stage, instance)
    }

    // ---- Stage 2: hard instances (Claim 2) ----------------------------

    /// Engine-backed version of `HardInstanceSearch::fails_on`: the
    /// deterministic algorithm's output on the planned instance is rejected
    /// by the language.
    pub fn fails_on<A: LocalAlgorithm + ?Sized>(&self, algo: &A, instance: &HardInstance) -> bool {
        let inst = instance.as_instance();
        let plan = ExecutionPlan::for_instance(&inst, algo.radius());
        let output = self.runner.run(algo, &plan);
        let io = IoConfig::from_instance(&inst, &output);
        !self.language.contains(&io)
    }

    /// [`DerandPipeline::fails_on`] against a shared [`PlanCache`]: the
    /// candidate's views at the algorithm's radius are planned at most once
    /// per distinct `(graph, ids, inputs, radius)` content no matter how
    /// many algorithms probe it. Verdicts are identical to the uncached
    /// path.
    pub fn fails_on_cached<A: LocalAlgorithm + ?Sized>(
        &self,
        algo: &A,
        instance: &HardInstance,
        cache: &mut PlanCache,
    ) -> bool {
        let inst = instance.as_instance();
        let plan = cache.plan_for(&inst, algo.radius());
        let output = self.runner.run(algo, plan);
        let io = IoConfig::from_instance(&inst, &output);
        !self.language.contains(&io)
    }

    /// Builds the Claim-2 pool: for each algorithm, the first candidate
    /// (after enforcing the running identity floor, by shifting) of
    /// diameter at least `min_diameter` on which it fails. Identity ranges
    /// come out pairwise disjoint, exactly like
    /// `HardInstanceSearch::hard_instance_family`. Uses a search-local
    /// [`PlanCache`]; pass your own via
    /// [`DerandPipeline::hard_instance_stage_cached`] to share plans across
    /// searches (or to read the hit statistics).
    pub fn hard_instance_stage<A: LocalAlgorithm + ?Sized>(
        &self,
        algorithms: &[&A],
        candidates: &[HardInstance],
        min_diameter: u32,
        min_id: u64,
    ) -> HardInstanceStage {
        let mut cache = PlanCache::new();
        self.hard_instance_stage_cached(algorithms, candidates, min_diameter, min_id, &mut cache)
    }

    /// [`DerandPipeline::hard_instance_stage`] against a caller-provided
    /// [`PlanCache`].
    ///
    /// The cache is what makes large algorithm families tractable: an
    /// algorithm that fails on *no* candidate leaves the identity floor
    /// unchanged, so the next algorithm re-probes the exact same shifted
    /// candidates — every one of those probes is a cache hit instead of a
    /// fresh ball-arena pass. In the real `N = |order-invariant
    /// algorithms|` regime, most algorithms share radii and most scans
    /// are misses, so the amortized cost per algorithm approaches the pure
    /// evaluation cost.
    pub fn hard_instance_stage_cached<A: LocalAlgorithm + ?Sized>(
        &self,
        algorithms: &[&A],
        candidates: &[HardInstance],
        min_diameter: u32,
        min_id: u64,
        cache: &mut PlanCache,
    ) -> HardInstanceStage {
        let mut pool = Vec::new();
        let mut missing = 0usize;
        let mut floor = min_id.max(1);
        // Verdicts of every algorithm on candidate `ci` as probed under
        // identity floor `floor`. A candidate's content is a function of
        // `(ci, floor)` (the floor fixes the id shift), so whenever a
        // probe lands on an unsettled verdict we batch one
        // `run_many` pass over *all* still-unsettled same-radius
        // algorithms from the prober onward — the cached views are
        // walked once per batch instead of once per algorithm.
        let mut verdicts: HashMap<(usize, u64), Vec<Option<bool>>> = HashMap::new();
        for (j, algo) in algorithms.iter().enumerate() {
            let mut found = None;
            for (ci, candidate) in candidates.iter().enumerate() {
                let candidate = if candidate.min_id() >= floor {
                    candidate.clone()
                } else {
                    candidate.shifted_ids(floor - candidate.min_id())
                };
                if candidate.diameter_lower_bound() < min_diameter {
                    continue;
                }
                let fails = {
                    let radius = algo.radius();
                    let inst = candidate.as_instance();
                    // Every probe still routes through the plan cache,
                    // so hit/miss statistics match the sequential scan
                    // exactly; only the `run` calls are batched.
                    let plan = cache.plan_for(&inst, radius);
                    let entry = verdicts
                        .entry((ci, floor))
                        .or_insert_with(|| vec![None; algorithms.len()]);
                    if entry[j].is_none() {
                        let batch: Vec<usize> = (j..algorithms.len())
                            .filter(|&jj| {
                                algorithms[jj].radius() == radius && entry[jj].is_none()
                            })
                            .collect();
                        let refs: Vec<&A> = batch.iter().map(|&jj| algorithms[jj]).collect();
                        let outputs = self.runner.run_many(&refs, plan);
                        for (&jj, output) in batch.iter().zip(&outputs) {
                            let io = IoConfig::from_instance(&inst, output);
                            entry[jj] = Some(!self.language.contains(&io));
                        }
                    }
                    entry[j].expect("batched scan settles the probing algorithm's verdict")
                };
                if fails {
                    found = Some(candidate);
                    break;
                }
            }
            match found {
                Some(instance) => {
                    floor = instance.max_id() + 1;
                    pool.push(instance);
                }
                None => missing += 1,
            }
        }
        HardInstanceStage { pool, missing }
    }

    /// The free-function [`failure_probability_with`] using this pipeline's
    /// constructor, language, and runner.
    pub fn failure_probability(&self, instance: &HardInstance, trials: u64, seed: u64) -> Estimate {
        failure_probability_with(&self.runner, self.constructor, self.language, instance, trials, seed)
    }

    // ---- Stage 3: boosted disjoint union (Claim 3) --------------------

    /// Plans the disjoint union of `nu` pool instances (cycling through the
    /// pool, identity ranges made disjoint — the Claim-3 composite) once.
    pub fn union_stage(&self, pool: &[HardInstance], nu: usize) -> UnionStage {
        let parts: Vec<_> = pool.iter().map(|h| (&h.graph, &h.input, &h.ids)).collect();
        let plan = UnionPlan::for_parts(
            &parts,
            nu,
            self.constructor.radius(),
            self.decider.radius(),
        );
        UnionStage { nu, plan }
    }

    /// `Pr[D accepts C(G)]` on the union, over both coin sources —
    /// bit-identical to `boosting::disjoint_union_acceptance`.
    pub fn union_acceptance(&self, stage: &UnionStage, trials: u64, seed: u64) -> Estimate {
        self.runner
            .union_acceptance(&stage.plan, self.constructor, self.decider, trials, seed)
    }

    // ---- Stage 4: connected gluing (Claims 4–5) -----------------------

    /// Glues the given parts at the given anchors (one per part) and plans
    /// the result, precomputing the far-from-anchors participation set.
    pub fn glued_stage(&self, parts: Vec<HardInstance>, anchors: Vec<NodeId>) -> GluedStage {
        let experiment = GluingExperiment::build(parts, anchors, self.params.t, self.params.t_prime);
        let glued_anchors: Vec<NodeId> = (0..experiment.parts.len())
            .map(|i| experiment.glued_anchor(i))
            .collect();
        let nu = experiment.parts.len();
        let instance = experiment.as_hard_instance();
        let plan = GluedPlan::new(
            &instance.as_instance(),
            glued_anchors,
            experiment.exclusion_radius,
            self.constructor.radius(),
            self.decider.radius(),
        );
        GluedStage {
            nu,
            mu: self.params.mu(),
            plan,
            instance,
        }
    }

    /// [`DerandPipeline::glued_stage`] with automatic part and anchor
    /// selection: cycles `nu` parts from the pool and anchors each at its
    /// first spread-set candidate (distance `≥ 2(t + t')` apart, as
    /// Claim 4 requires).
    ///
    /// # Panics
    /// Panics if the pool is empty or `nu < 2`.
    pub fn glued_stage_auto(&self, pool: &[HardInstance], nu: usize) -> GluedStage {
        assert!(!pool.is_empty(), "gluing needs a non-empty hard-instance pool");
        assert!(nu >= 2, "gluing needs at least two parts");
        let parts: Vec<HardInstance> = (0..nu).map(|i| pool[i % pool.len()].clone()).collect();
        let anchors: Vec<NodeId> = parts
            .iter()
            .map(|part| {
                let candidates =
                    anchor_candidates(part, self.params.t, self.params.t_prime, self.params.p);
                assert!(
                    !candidates.is_empty(),
                    "no anchor candidate in a {}-node part",
                    part.node_count()
                );
                candidates[0]
            })
            .collect();
        self.glued_stage(parts, anchors)
    }

    /// All-nodes acceptance `Pr[D accepts C(G)]` on the glued instance —
    /// bit-identical to `GluingExperiment::acceptance`.
    pub fn glued_acceptance(&self, stage: &GluedStage, trials: u64, seed: u64) -> Estimate {
        self.runner
            .glued_acceptance(&stage.plan, self.constructor, self.decider, trials, seed)
    }

    /// The Claims-4/5 event `Pr[D accepts C(G) far from every anchor]` —
    /// bit-identical to `GluingExperiment::acceptance_far_from_all_anchors`.
    pub fn glued_far_acceptance(&self, stage: &GluedStage, trials: u64, seed: u64) -> Estimate {
        self.runner
            .glued_far_acceptance(&stage.plan, self.constructor, self.decider, trials, seed)
    }
}

/// Stage 1 standalone (Claim 1 / Appendix A): refines `universe` until
/// `algo` is consistent on every ball type of the probe instances (at
/// `algo`'s radius). The refinement itself is
/// `rlnc_core::derand::ramsey::consistent_id_set` verbatim, so seeded
/// streams match the legacy E8 driver exactly.
pub fn ramsey_stage<A: LocalAlgorithm + ?Sized>(
    algo: &A,
    probes: &[Instance<'_>],
    universe: &[u64],
    samples_per_round: usize,
    seed: u64,
) -> RamseyStage {
    let templates = collect_templates(probes, algo.radius());
    let id_set = consistent_id_set(algo, &templates, universe, samples_per_round, seed);
    RamseyStage {
        id_set,
        universe_size: universe.len(),
        templates: templates.len(),
    }
}

/// Engine-backed agreement of two same-radius deterministic algorithms on
/// one instance: one plan (one arena pass) serves both evaluations.
pub fn deterministic_agreement<A, B>(
    runner: &BatchRunner,
    a: &A,
    b: &B,
    instance: &Instance<'_>,
) -> bool
where
    A: LocalAlgorithm + ?Sized,
    B: LocalAlgorithm + ?Sized,
{
    let plan = ExecutionPlan::for_instance(instance, a.radius());
    runner.run(a, &plan) == runner.run(b, &plan)
}

/// Engine-backed agreement check: does the lift `A'` built from the
/// stage's identity set compute the same outputs as `A` on `instance`?
/// Callers that already hold the lift should use
/// [`deterministic_agreement`] directly and avoid rebuilding it.
pub fn lift_agrees_with<A: LocalAlgorithm + ?Sized>(
    runner: &BatchRunner,
    algo: &A,
    stage: &RamseyStage,
    instance: &Instance<'_>,
) -> bool {
    let lift = OrderInvariantLift::new(algo, stage.id_set.clone());
    deterministic_agreement(runner, algo, &lift, instance)
}

/// Stage-2 standalone (Claim 2): engine-backed failure probability β of a
/// randomized constructor on a fixed instance, `Pr[C(H, x, id) ∉ L]` —
/// the decider plays no part in this stage. Bit-identical to
/// `HardInstanceSearch::failure_probability` (cached views, same per-trial
/// seed derivation, complemented counts).
pub fn failure_probability_with<C, L>(
    runner: &BatchRunner,
    constructor: &C,
    language: &L,
    instance: &HardInstance,
    trials: u64,
    seed: u64,
) -> Estimate
where
    C: RandomizedLocalAlgorithm + ?Sized,
    L: DistributedLanguage + ?Sized,
{
    let inst = instance.as_instance();
    let plan = ExecutionPlan::for_instance(&inst, constructor.radius());
    runner.estimate(constructor, &plan, trials, seed, |out| {
        let io = IoConfig::from_instance(&inst, out);
        !language.contains(&io)
    })
}

/// Convenience constructor for the common LCL shape: the pipeline of a
/// language against its one-sided decider ([`OneSidedLclDecider`]).
pub fn lcl_pipeline<'a, C, L>(
    constructor: &'a C,
    decider: &'a OneSidedLclDecider<L>,
    language: &'a L,
    r: f64,
    t: u32,
) -> DerandPipeline<'a, C, OneSidedLclDecider<L>, L>
where
    C: RandomizedLocalAlgorithm + ?Sized,
    L: LclLanguage,
{
    let params = PipelineParams {
        r,
        p: decider.rejection_probability(),
        t,
        t_prime: language.radius(),
    };
    DerandPipeline::new(constructor, decider, language, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlnc_core::algorithm::FnAlgorithm;
    use rlnc_core::derand::boosting::disjoint_union_acceptance;
    use rlnc_core::derand::hard_instances::{consecutive_cycle_candidates, HardInstanceSearch};
    use rlnc_core::labels::Label;
    use rlnc_core::view::View;
    use rlnc_graph::traversal::is_connected;
    use rlnc_langs::coloring::ProperColoring;
    use rlnc_langs::random_coloring::RandomColoring;

    fn coloring_pipeline() -> (RandomColoring, OneSidedLclDecider<ProperColoring>, ProperColoring) {
        (
            RandomColoring::new(3),
            OneSidedLclDecider::new(ProperColoring::new(3), 0.75),
            ProperColoring::new(3),
        )
    }

    #[test]
    fn params_arithmetic() {
        let params = PipelineParams { r: 0.9, p: 0.75, t: 0, t_prime: 1 };
        assert_eq!(params.exclusion_radius(), 1);
        assert_eq!(params.mu(), 2);
    }

    #[test]
    fn hard_instance_stage_matches_legacy_search() {
        let (constructor, decider, language) = coloring_pipeline();
        let pipeline = lcl_pipeline(&constructor, &decider, &language, 0.9, 0);
        let c1 = FnAlgorithm::new(1, "always-1", |_: &View| Label::from_u64(1));
        let c2 = FnAlgorithm::new(1, "always-2", |_: &View| Label::from_u64(2));
        let algos: [&dyn LocalAlgorithm; 2] = [&c1, &c2];
        let candidates = consecutive_cycle_candidates([8, 10]);
        let stage = pipeline.hard_instance_stage(&algos, &candidates, 0, 1);
        assert_eq!(stage.missing, 0);
        assert_eq!(stage.pool.len(), 2);
        // Same pool as the legacy search (disjoint id ranges included).
        let legacy = HardInstanceSearch::new(&language).with_min_id(1);
        let dyn_algos: Vec<&dyn LocalAlgorithm> = vec![&c1, &c2];
        let (reference, missing) = legacy.hard_instance_family(dyn_algos, &candidates);
        assert_eq!(missing, 0);
        for (ours, theirs) in stage.pool.iter().zip(&reference) {
            assert_eq!(ours.graph, theirs.graph);
            assert_eq!(ours.ids.as_slice(), theirs.ids.as_slice());
        }
    }

    #[test]
    fn cached_hard_instance_search_reuses_plans_across_missing_algorithms() {
        let (constructor, decider, language) = coloring_pipeline();
        let pipeline = lcl_pipeline(&constructor, &decider, &language, 0.9, 0);
        // Two algorithms that never fail on even cycles (id-parity is a
        // proper 2-coloring there) followed by one that always fails: the
        // parity algorithms scan the whole candidate list at the same
        // identity floor, so the second scan must be pure cache hits.
        let p1 = FnAlgorithm::new(0, "id-parity", |v: &View| Label::from_u64(v.center_id() % 2 + 1));
        let p2 = FnAlgorithm::new(0, "id-parity-flipped", |v: &View| {
            Label::from_u64((v.center_id() + 1) % 2 + 1)
        });
        let c1 = FnAlgorithm::new(0, "always-1", |_: &View| Label::from_u64(1));
        let algos: [&dyn LocalAlgorithm; 3] = [&p1, &p2, &c1];
        let candidates = consecutive_cycle_candidates([8, 10, 12]);
        let mut cache = rlnc_engine::PlanCache::new();
        let cached = pipeline.hard_instance_stage_cached(&algos, &candidates, 0, 1, &mut cache);
        assert_eq!(cached.missing, 2);
        assert_eq!(cached.pool.len(), 1);
        // First algorithm: 3 misses. Second: 3 hits. Third: 1 hit.
        assert_eq!(cache.misses(), 3, "one plan per distinct candidate");
        assert_eq!(cache.hits(), 4, "repeat scans must hit the cache");
        // And the result is identical to the uncached search.
        let uncached = pipeline.hard_instance_stage(&algos, &candidates, 0, 1);
        assert_eq!(uncached.missing, cached.missing);
        assert_eq!(uncached.pool.len(), cached.pool.len());
        for (a, b) in cached.pool.iter().zip(&uncached.pool) {
            assert_eq!(a.graph, b.graph);
            assert_eq!(a.ids.as_slice(), b.ids.as_slice());
        }
    }

    #[test]
    fn batched_hard_instance_scan_is_pinned() {
        let (constructor, decider, language) = coloring_pipeline();
        let pipeline = lcl_pipeline(&constructor, &decider, &language, 0.9, 0);
        // A mixed-radius family: the batched scan settles one same-radius
        // slice per `run_many` call, so radius-0 and radius-1 algorithms
        // land in separate batches while the identity floor keeps
        // threading through in family order.
        let p1 = FnAlgorithm::new(0, "id-parity", |v: &View| Label::from_u64(v.center_id() % 2 + 1));
        let c1 = FnAlgorithm::new(1, "always-1", |_: &View| Label::from_u64(1));
        let p2 = FnAlgorithm::new(0, "id-mod-3", |v: &View| Label::from_u64(v.center_id() % 3 + 1));
        let c2 = FnAlgorithm::new(1, "always-2", |_: &View| Label::from_u64(2));
        let algos: [&dyn LocalAlgorithm; 4] = [&p1, &c1, &p2, &c2];
        let candidates = consecutive_cycle_candidates([8, 10, 12]);
        let stage = pipeline.hard_instance_stage(&algos, &candidates, 0, 1);
        // Bit-identical to the legacy probe-by-probe search...
        let legacy = HardInstanceSearch::new(&language).with_min_id(1);
        let (reference, missing) = legacy.hard_instance_family(algos.to_vec(), &candidates);
        assert_eq!(stage.missing, missing);
        assert_eq!(stage.pool.len(), reference.len());
        for (ours, theirs) in stage.pool.iter().zip(&reference) {
            assert_eq!(ours.graph, theirs.graph);
            assert_eq!(ours.ids.as_slice(), theirs.ids.as_slice());
        }
        // ...and pinned in shape: id-parity 2-colors even cycles properly
        // (missing), always-1 fails the 8-cycle, id-mod-3 first fails on
        // the shifted 10-cycle (its closing edge collides mod 3), always-2
        // fails the next shifted 8-cycle — identity ranges pairwise
        // disjoint above the floor.
        assert_eq!(stage.missing, 1);
        let shape: Vec<(usize, u64, u64)> = stage
            .pool
            .iter()
            .map(|h| (h.graph.node_count(), h.min_id(), h.max_id()))
            .collect();
        assert_eq!(shape, [(8, 1, 8), (10, 9, 18), (8, 19, 26)]);
    }

    #[test]
    fn failure_probability_matches_legacy_search() {
        let (constructor, decider, language) = coloring_pipeline();
        let pipeline = lcl_pipeline(&constructor, &decider, &language, 0.9, 0);
        let instance = consecutive_cycle_candidates([6]).remove(0);
        let engine = pipeline.failure_probability(&instance, 500, 3);
        let legacy = HardInstanceSearch::new(&language)
            .failure_probability(&constructor, &instance, 500, 3);
        assert_eq!(engine.successes, legacy.successes);
        assert_eq!(engine.p_hat, legacy.p_hat);
    }

    #[test]
    fn union_acceptance_matches_legacy_boosting() {
        let (constructor, decider, language) = coloring_pipeline();
        let pipeline = lcl_pipeline(&constructor, &decider, &language, 0.9, 0);
        let pool = consecutive_cycle_candidates([6, 8]);
        for nu in [1usize, 3] {
            let stage = pipeline.union_stage(&pool, nu);
            assert_eq!(stage.plan.components(), nu);
            let engine = pipeline.union_acceptance(&stage, 400, 0);
            let legacy = disjoint_union_acceptance(&constructor, &decider, &pool, nu, 400, 0);
            assert_eq!(engine.successes, legacy.successes);
        }
    }

    #[test]
    fn glued_stage_matches_legacy_gluing_experiment() {
        let (constructor, decider, language) = coloring_pipeline();
        let pipeline = lcl_pipeline(&constructor, &decider, &language, 0.9, 0);
        let pool = consecutive_cycle_candidates([12, 14]);
        let stage = pipeline.glued_stage_auto(&pool, 3);
        assert_eq!(stage.nu, 3);
        assert!(is_connected(&stage.instance.graph));
        assert!(stage.instance.graph.max_degree() <= 3);

        // Reference: the legacy experiment with the same parts and anchors.
        let parts: Vec<HardInstance> = (0..3).map(|i| pool[i % 2].clone()).collect();
        let anchors: Vec<NodeId> = parts
            .iter()
            .map(|p| anchor_candidates(p, 0, 1, 0.75)[0])
            .collect();
        let experiment = GluingExperiment::build(parts, anchors, 0, 1);
        let far_engine = pipeline.glued_far_acceptance(&stage, 300, 0);
        let far_legacy =
            experiment.acceptance_far_from_all_anchors(&constructor, &decider, 300, 0);
        assert_eq!(far_engine.successes, far_legacy.successes);
        let full_engine = pipeline.glued_acceptance(&stage, 300, 7);
        let full_legacy = experiment.acceptance(&constructor, &decider, 300, 7);
        assert_eq!(full_engine.successes, full_legacy.successes);
    }

    #[test]
    fn ramsey_stage_refines_and_lift_agrees() {
        let (constructor, decider, language) = coloring_pipeline();
        let pipeline = lcl_pipeline(&constructor, &decider, &language, 0.9, 0);
        let probe = consecutive_cycle_candidates([8]).remove(0);
        let algo = FnAlgorithm::new(0, "id-parity", |v: &View| Label::from_u64(v.center_id() % 2));
        let universe: Vec<u64> = (1..=60).collect();
        let stage = pipeline.ramsey_stage(&algo, &[probe.as_instance()], &universe, 300, 7);
        assert_eq!(stage.templates, 1);
        assert!(stage.survival_rate() > 0.0 && stage.survival_rate() <= 1.0);
        let parities: std::collections::HashSet<u64> =
            stage.id_set.iter().map(|x| x % 2).collect();
        assert_eq!(parities.len(), 1, "refined set must land in one parity class");
        // Agreement on an instance whose ids come from the refined set.
        let in_set = HardInstance::new(
            probe.graph.clone(),
            probe.input.clone(),
            rlnc_graph::IdAssignment::new(stage.id_set.iter().take(8).copied().collect()),
        );
        assert!(pipeline.lift_agrees(&algo, &stage, &in_set.as_instance()));
    }
}

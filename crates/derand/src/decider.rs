//! The generic one-sided BPLD decider — re-exported from `rlnc-core`.
//!
//! [`OneSidedLclDecider`] started life in this crate; the language-registry
//! refactor promoted it into `rlnc_core::one_sided` so that `rlnc-langs`
//! can bundle it per case without depending on the pipeline crate. The
//! re-export keeps every existing `rlnc_derand::OneSidedLclDecider` (and
//! `rlnc_derand::decider::OneSidedLclDecider`) path compiling; the
//! integration tests below pin the decider's coin-for-coin agreement with
//! the concrete languages this crate attacks.

pub use rlnc_core::one_sided::OneSidedLclDecider;

#[cfg(test)]
mod tests {
    use super::*;
    use rlnc_core::config::IoConfig;
    use rlnc_core::decision::{acceptance_probability, decide_randomized, RandomizedDecider};
    use rlnc_core::labels::{Label, Labeling};
    use rlnc_graph::generators::cycle;
    use rlnc_graph::{IdAssignment, NodeId};
    use rlnc_langs::coloring::ProperColoring;
    use rlnc_par::SeedSequence;

    #[test]
    fn accepts_proper_colorings_deterministically() {
        let g = cycle(12);
        let x = Labeling::empty(12);
        let y = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0 % 2) + 1));
        let ids = IdAssignment::consecutive(&g);
        let io = IoConfig::new(&g, &x, &y);
        let d = OneSidedLclDecider::new(ProperColoring::new(2), 0.8);
        assert_eq!(RandomizedDecider::radius(&d), 1);
        assert!(d.name().contains("0.8"));
        for t in 0..10 {
            assert!(decide_randomized(&d, &io, &ids, SeedSequence::new(t)));
        }
    }

    #[test]
    fn rejects_bad_configurations_per_bad_ball() {
        // All nodes colored 1: every ball is bad, acceptance = (1-p)^n.
        let g = cycle(6);
        let x = Labeling::empty(6);
        let y = Labeling::from_fn(&g, |_| Label::from_u64(1));
        let ids = IdAssignment::consecutive(&g);
        let io = IoConfig::new(&g, &x, &y);
        let p = 0.5;
        let d = OneSidedLclDecider::new(ProperColoring::new(3), p);
        let est = acceptance_probability(&d, &io, &ids, 6000, 9);
        let expected = (1.0 - p).powi(6);
        assert!(
            (est.p_hat - expected).abs() < 0.02,
            "measured {} vs theory {expected}",
            est.p_hat
        );
    }

    #[test]
    fn matches_the_coloring_specific_decider_coin_for_coin() {
        // The sweep crate's RejectBadBallsDecider is the ProperColoring
        // instantiation of this decider; their verdicts must agree on every
        // (configuration, seed) pair. Checked structurally here: same draw
        // pattern (one random_bool at bad centers only).
        let g = cycle(8);
        let x = Labeling::empty(8);
        let mut y = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0 % 2) + 1));
        // Recolor node 3 to match both neighbors: balls 2, 3, 4 become bad.
        y.set(NodeId(3), Label::from_u64(1));
        let ids = IdAssignment::consecutive(&g);
        let io = IoConfig::new(&g, &x, &y);
        let d = OneSidedLclDecider::new(ProperColoring::new(2), 0.7);
        // 3 bad balls (nodes 2, 3, 4); acceptance = 0.3^3 in expectation,
        // and the verdict per seed is deterministic.
        let a = decide_randomized(&d, &io, &ids, SeedSequence::new(5));
        let b = decide_randomized(&d, &io, &ids, SeedSequence::new(5));
        assert_eq!(a, b);
    }
}

//! The generic one-sided BPLD decider for LCL languages.

use rand::Rng;
use rlnc_core::algorithm::Coins;
use rlnc_core::config::IoConfig;
use rlnc_core::decision::RandomizedDecider;
use rlnc_core::labels::Labeling;
use rlnc_core::language::LclLanguage;
use rlnc_core::view::View;
use rlnc_graph::NodeId;

/// The standard one-sided randomized decider for an arbitrary LCL language:
/// a node whose radius-`t` ball is good always accepts; a node whose ball
/// is bad rejects with probability `p` (and accepts with probability
/// `1 − p`).
///
/// On a yes-instance every node accepts deterministically; on a no-instance
/// with `b ≥ 1` bad balls the acceptance probability is `(1 − p)^b`. This
/// is the decider shape Claim 3 and the gluing argument feed on, and it
/// generalizes the coloring-specific `RejectBadBallsDecider` of the sweep
/// workloads: for `ProperColoring` the two are coin-for-coin identical
/// (one `random_bool(p)` draw at bad centers, none at good centers).
#[derive(Debug, Clone, Copy)]
pub struct OneSidedLclDecider<L> {
    language: L,
    p: f64,
}

impl<L: LclLanguage> OneSidedLclDecider<L> {
    /// Builds the decider with rejection probability `p` at bad-ball
    /// centers.
    ///
    /// # Panics
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn new(language: L, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "rejection probability must lie in [0, 1]");
        OneSidedLclDecider { language, p }
    }

    /// The rejection probability at bad-ball centers.
    pub fn rejection_probability(&self) -> f64 {
        self.p
    }

    /// The underlying LCL language.
    pub fn language(&self) -> &L {
        &self.language
    }
}

impl<L: LclLanguage> RandomizedDecider for OneSidedLclDecider<L> {
    fn radius(&self) -> u32 {
        self.language.radius()
    }

    fn accepts(&self, view: &View, coins: &Coins) -> bool {
        // An LCL predicate of radius t evaluated at the center of a
        // radius-t view reads only data inside the view, so rebuilding the
        // ball as a standalone configuration is exact (same convention as
        // `ResilientDecider`).
        let input = Labeling::new((0..view.len()).map(|i| view.input(i).clone()).collect());
        let output = Labeling::new((0..view.len()).map(|i| view.output(i).clone()).collect());
        let local_io = IoConfig::new(view.local_graph(), &input, &output);
        if !self
            .language
            .is_bad_ball(&local_io, NodeId::from_index(view.center_local()))
        {
            return true;
        }
        !coins.for_center(view).random_bool(self.p)
    }

    fn name(&self) -> String {
        format!("one-sided(p={}, {})", self.p, self.language.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlnc_core::decision::{acceptance_probability, decide_randomized};
    use rlnc_core::labels::Label;
    use rlnc_graph::generators::cycle;
    use rlnc_graph::IdAssignment;
    use rlnc_langs::coloring::ProperColoring;
    use rlnc_par::SeedSequence;

    #[test]
    fn accepts_proper_colorings_deterministically() {
        let g = cycle(12);
        let x = Labeling::empty(12);
        let y = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0 % 2) + 1));
        let ids = IdAssignment::consecutive(&g);
        let io = IoConfig::new(&g, &x, &y);
        let d = OneSidedLclDecider::new(ProperColoring::new(2), 0.8);
        assert_eq!(RandomizedDecider::radius(&d), 1);
        assert!(d.name().contains("0.8"));
        for t in 0..10 {
            assert!(decide_randomized(&d, &io, &ids, SeedSequence::new(t)));
        }
    }

    #[test]
    fn rejects_bad_configurations_per_bad_ball() {
        // All nodes colored 1: every ball is bad, acceptance = (1-p)^n.
        let g = cycle(6);
        let x = Labeling::empty(6);
        let y = Labeling::from_fn(&g, |_| Label::from_u64(1));
        let ids = IdAssignment::consecutive(&g);
        let io = IoConfig::new(&g, &x, &y);
        let p = 0.5;
        let d = OneSidedLclDecider::new(ProperColoring::new(3), p);
        let est = acceptance_probability(&d, &io, &ids, 6000, 9);
        let expected = (1.0 - p).powi(6);
        assert!(
            (est.p_hat - expected).abs() < 0.02,
            "measured {} vs theory {expected}",
            est.p_hat
        );
    }

    #[test]
    fn matches_the_coloring_specific_decider_coin_for_coin() {
        // The sweep crate's RejectBadBallsDecider is the ProperColoring
        // instantiation of this decider; their verdicts must agree on every
        // (configuration, seed) pair. Checked structurally here: same draw
        // pattern (one random_bool at bad centers only).
        let g = cycle(8);
        let x = Labeling::empty(8);
        let mut y = Labeling::from_fn(&g, |v| Label::from_u64(u64::from(v.0 % 2) + 1));
        // Recolor node 3 to match both neighbors: balls 2, 3, 4 become bad.
        y.set(NodeId(3), Label::from_u64(1));
        let ids = IdAssignment::consecutive(&g);
        let io = IoConfig::new(&g, &x, &y);
        let d = OneSidedLclDecider::new(ProperColoring::new(2), 0.7);
        // 3 bad balls (nodes 2, 3, 4); acceptance = 0.3^3 in expectation,
        // and the verdict per seed is deterministic.
        let a = decide_randomized(&d, &io, &ids, SeedSequence::new(5));
        let b = decide_randomized(&d, &io, &ids, SeedSequence::new(5));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "rejection probability")]
    fn rejects_bad_p() {
        let _ = OneSidedLclDecider::new(ProperColoring::new(2), -0.1);
    }
}

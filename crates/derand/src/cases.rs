//! Ready-made language / constructor / decider bundles for the pipeline.
//!
//! The `theorem1-pipeline` sweep scenario runs the full four-stage argument
//! against several concrete languages; each [`PipelineCase`] packages one
//! such triple together with a deterministic algorithm family for the
//! Claim-2 hard-instance search. The bundles are deliberately boxed: the
//! sweep's grid points pick a case at runtime from their parameters, so the
//! pipeline must be drivable through trait objects (every core trait here
//! is object-safe and `?Sized`-accepting).

use crate::decider::OneSidedLclDecider;
use crate::pipeline::PipelineParams;
use rlnc_core::algorithm::{FnAlgorithm, LocalAlgorithm, RandomizedLocalAlgorithm};
use rlnc_core::decision::RandomizedDecider;
use rlnc_core::labels::Label;
use rlnc_core::language::DistributedLanguage;
use rlnc_core::view::View;
use rlnc_langs::amos::{Amos, AmosGoldenDecider, BernoulliSelection};
use rlnc_langs::coloring::ProperColoring;
use rlnc_langs::random_coloring::RandomColoring;
use rlnc_langs::weak_coloring::{RandomBitColoring, WeakColoring};

/// The named language/algorithm pairs shipped with the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineCase {
    /// Proper 3-coloring, attacked through the zero-round random coloring
    /// and the one-sided reject-bad-balls decider (`p = 0.75`).
    Coloring3,
    /// `amos` ("at most one selected"), attacked through the zero-round
    /// Bernoulli selector and the golden-ratio decider
    /// (`p = (√5−1)/2 ≈ 0.618`).
    Amos,
    /// Weak 2-coloring, attacked through the zero-round fair-coin coloring
    /// and the one-sided decider (`p = 0.75`).
    WeakColoring,
}

impl PipelineCase {
    /// All cases, in `index` order.
    pub const ALL: [PipelineCase; 3] =
        [PipelineCase::Coloring3, PipelineCase::Amos, PipelineCase::WeakColoring];

    /// The slug recorded in sweep records and tables.
    pub fn name(&self) -> &'static str {
        match self {
            PipelineCase::Coloring3 => "coloring3",
            PipelineCase::Amos => "amos",
            PipelineCase::WeakColoring => "weak-coloring",
        }
    }

    /// Case for a grid-parameter index (`index % 3`), so a sweep axis can
    /// enumerate the cases.
    pub fn from_index(index: u64) -> PipelineCase {
        PipelineCase::ALL[(index % PipelineCase::ALL.len() as u64) as usize]
    }

    /// Materializes the case's bundle.
    pub fn bundle(&self) -> CaseBundle {
        match self {
            PipelineCase::Coloring3 => CaseBundle {
                name: self.name(),
                language: Box::new(ProperColoring::new(3)),
                constructor: Box::new(RandomColoring::new(3)),
                decider: Box::new(OneSidedLclDecider::new(ProperColoring::new(3), 0.75)),
                det_family: constant_colorers(3),
                params: PipelineParams { r: 0.9, p: 0.75, t: 0, t_prime: 1 },
            },
            PipelineCase::Amos => CaseBundle {
                name: self.name(),
                language: Box::new(Amos::new()),
                constructor: Box::new(BernoulliSelection::new(0.15)),
                decider: Box::new(AmosGoldenDecider::new()),
                det_family: selection_family(),
                params: PipelineParams {
                    r: 0.9,
                    p: rlnc_langs::amos::GOLDEN_GUARANTEE,
                    t: 0,
                    t_prime: 0,
                },
            },
            PipelineCase::WeakColoring => CaseBundle {
                name: self.name(),
                language: Box::new(WeakColoring::new()),
                constructor: Box::new(RandomBitColoring),
                decider: Box::new(OneSidedLclDecider::new(WeakColoring::new(), 0.75)),
                det_family: monochrome_family(),
                params: PipelineParams { r: 0.9, p: 0.75, t: 0, t_prime: 1 },
            },
        }
    }
}

/// One language / constructor / decider triple plus the deterministic
/// algorithm family the Claim-2 search runs against.
pub struct CaseBundle {
    /// The case's slug.
    pub name: &'static str,
    /// The distributed language under attack.
    pub language: Box<dyn DistributedLanguage>,
    /// The randomized constructor whose failure probability β the pipeline
    /// measures and boosts.
    pub constructor: Box<dyn RandomizedLocalAlgorithm>,
    /// The randomized decider with guarantee `p`.
    pub decider: Box<dyn RandomizedDecider>,
    /// Deterministic algorithms for the hard-instance search — each fails
    /// on every connected regular candidate the scenario generates, so the
    /// pool always fills.
    pub det_family: Vec<Box<dyn LocalAlgorithm>>,
    /// The case's quantitative knobs (`r`, `p`, radii).
    pub params: PipelineParams,
}

/// Constant colorings `1..=colors` — each fails on any graph with an edge.
fn constant_colorers(colors: u64) -> Vec<Box<dyn LocalAlgorithm>> {
    (1..=colors)
        .map(|c| {
            Box::new(FnAlgorithm::new(1, format!("always-{c}"), move |_: &View| {
                Label::from_u64(c)
            })) as Box<dyn LocalAlgorithm>
        })
        .collect()
}

/// Selection rules that each select at least two nodes on every candidate
/// with at least four nodes (violating `amos`).
fn selection_family() -> Vec<Box<dyn LocalAlgorithm>> {
    vec![
        Box::new(FnAlgorithm::new(0, "select-all", |_: &View| Label::from_bool(true))),
        Box::new(FnAlgorithm::new(0, "select-odd-ids", |v: &View| {
            Label::from_bool(v.center_id() % 2 == 1)
        })),
        Box::new(FnAlgorithm::new(0, "select-even-ids", |v: &View| {
            Label::from_bool(v.center_id() % 2 == 0)
        })),
    ]
}

/// Monochrome colorings — on a connected graph every non-isolated node ends
/// up with an all-same-color neighborhood, so weak 2-coloring fails.
fn monochrome_family() -> Vec<Box<dyn LocalAlgorithm>> {
    vec![
        Box::new(FnAlgorithm::new(1, "all-zero", |_: &View| Label::from_bool(false))),
        Box::new(FnAlgorithm::new(1, "all-one", |_: &View| Label::from_bool(true))),
        Box::new(FnAlgorithm::new(1, "degree-parity", |v: &View| {
            Label::from_bool(v.center_degree() % 2 == 1)
        })),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::DerandPipeline;
    use rlnc_core::derand::hard_instances::consecutive_cycle_candidates;
    use rlnc_graph::traversal::is_connected;

    #[test]
    fn case_names_and_indexing() {
        assert_eq!(PipelineCase::ALL.len(), 3);
        assert_eq!(PipelineCase::from_index(0), PipelineCase::Coloring3);
        assert_eq!(PipelineCase::from_index(1), PipelineCase::Amos);
        assert_eq!(PipelineCase::from_index(2), PipelineCase::WeakColoring);
        assert_eq!(PipelineCase::from_index(5), PipelineCase::WeakColoring);
        let names: std::collections::HashSet<&str> =
            PipelineCase::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), 3);
    }

    #[test]
    fn every_case_runs_the_four_stages_end_to_end_on_cycles() {
        for case in PipelineCase::ALL {
            let bundle = case.bundle();
            let pipeline = DerandPipeline::new(
                &*bundle.constructor,
                &*bundle.decider,
                &*bundle.language,
                bundle.params,
            );
            let candidates = consecutive_cycle_candidates([12, 14, 16]);
            // Stage 1: the refinement terminates and keeps enough ids.
            let probe = candidates[0].as_instance();
            let algo = &*bundle.det_family[0];
            let universe: Vec<u64> = (1..=48).collect();
            let ramsey = pipeline.ramsey_stage(algo, &[probe], &universe, 60, 11);
            assert!(ramsey.id_set.len() >= 3, "{}: refined set too small", bundle.name);
            // Stage 2: every deterministic algorithm has a hard instance.
            let algos: Vec<&dyn rlnc_core::LocalAlgorithm> =
                bundle.det_family.iter().map(|b| &**b).collect();
            let stage = pipeline.hard_instance_stage(&algos, &candidates, 0, 1);
            assert_eq!(stage.missing, 0, "{}: search came up empty", bundle.name);
            assert_eq!(stage.pool.len(), bundle.det_family.len());
            // β is strictly positive (the constructor really fails).
            let beta = pipeline.failure_probability(&stage.pool[0], 300, 5);
            assert!(beta.p_hat > 0.05, "{}: beta {} too small", bundle.name, beta.p_hat);
            // Stage 3: union acceptance decays with ν.
            let u2 = pipeline.union_stage(&stage.pool, 2);
            let u4 = pipeline.union_stage(&stage.pool, 4);
            let a2 = pipeline.union_acceptance(&u2, 300, 0);
            let a4 = pipeline.union_acceptance(&u4, 300, 0);
            assert!(
                a4.p_hat <= a2.p_hat + 0.1,
                "{}: union acceptance must not grow with nu ({} vs {})",
                bundle.name,
                a4.p_hat,
                a2.p_hat
            );
            // Stage 4: the gluing is connected and evaluable.
            let glued = pipeline.glued_stage_auto(&stage.pool, 2);
            assert!(is_connected(&glued.instance.graph));
            let far = pipeline.glued_far_acceptance(&glued, 200, 0);
            assert!((0.0..=1.0).contains(&far.p_hat));
        }
    }
}

//! Ready-made language / constructor / decider bundles for the pipeline —
//! sourced from the `rlnc-langs` case registry.
//!
//! The `theorem1-pipeline` sweep scenario runs the full four-stage argument
//! against several concrete languages; each [`PipelineCase`] names one such
//! triple and materializes it as a [`CaseBundle`] straight from
//! [`rlnc_langs::registry::CaseRegistry`] (the bundles are bit-identical to
//! the hand-wired ones this module used to build — same constructors,
//! deciders, deterministic families, and parameters — so seed-0 sweep
//! records are unchanged). The whole registry, not just these three legacy
//! cases, is sweepable through the `language-matrix` scenario; the enum
//! here survives as the stable three-case axis of `theorem1-pipeline`.

use crate::pipeline::PipelineParams;
use rlnc_core::algorithm::{LocalAlgorithm, RandomizedLocalAlgorithm};
use rlnc_core::decision::RandomizedDecider;
use rlnc_core::language::DistributedLanguage;
pub use rlnc_langs::registry::{CaseId, CaseParams, CaseRegistry, InputKind, LanguageCase};

/// The named language/algorithm pairs shipped with the `theorem1-pipeline`
/// scenario (the first three entries of the full
/// [`CaseRegistry`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineCase {
    /// Proper 3-coloring, attacked through the zero-round random coloring
    /// and the one-sided reject-bad-balls decider (`p = 0.75`).
    Coloring3,
    /// `amos` ("at most one selected"), attacked through the zero-round
    /// Bernoulli selector and the golden-ratio decider
    /// (`p = (√5−1)/2 ≈ 0.618`).
    Amos,
    /// Weak 2-coloring, attacked through the zero-round fair-coin coloring
    /// and the one-sided decider (`p = 0.75`).
    WeakColoring,
}

impl PipelineCase {
    /// All cases, in `index` order.
    pub const ALL: [PipelineCase; 3] =
        [PipelineCase::Coloring3, PipelineCase::Amos, PipelineCase::WeakColoring];

    /// The slug recorded in sweep records and tables.
    pub fn name(&self) -> &'static str {
        self.case_id().name()
    }

    /// Case for a grid-parameter index (`index % 3`), so a sweep axis can
    /// enumerate the cases.
    pub fn from_index(index: u64) -> PipelineCase {
        PipelineCase::ALL[(index % PipelineCase::ALL.len() as u64) as usize]
    }

    /// The registry id behind this legacy case.
    pub fn case_id(&self) -> CaseId {
        match self {
            PipelineCase::Coloring3 => CaseId::Coloring3,
            PipelineCase::Amos => CaseId::Amos,
            PipelineCase::WeakColoring => CaseId::WeakColoring,
        }
    }

    /// Materializes the case's bundle from the registry.
    pub fn bundle(&self) -> CaseBundle {
        CaseBundle::from_case(self.case_id().case())
    }
}

/// One language / constructor / decider triple plus the deterministic
/// algorithm family the Claim-2 search runs against — a registry
/// [`LanguageCase`] with its parameters lifted into the pipeline's
/// [`PipelineParams`].
pub struct CaseBundle {
    /// The case's slug.
    pub name: &'static str,
    /// The distributed language under attack.
    pub language: Box<dyn DistributedLanguage>,
    /// The randomized constructor whose failure probability β the pipeline
    /// measures and boosts.
    pub constructor: Box<dyn RandomizedLocalAlgorithm>,
    /// The randomized decider with guarantee `p`.
    pub decider: Box<dyn RandomizedDecider>,
    /// Deterministic algorithms for the hard-instance search — each fails
    /// on every connected regular candidate the scenario generates, so the
    /// pool always fills.
    pub det_family: Vec<Box<dyn LocalAlgorithm>>,
    /// The case's quantitative knobs (`r`, `p`, radii).
    pub params: PipelineParams,
}

impl CaseBundle {
    /// Adapts a registry case into the pipeline's bundle shape.
    pub fn from_case(case: LanguageCase) -> CaseBundle {
        CaseBundle {
            name: case.name,
            language: case.language,
            constructor: case.constructor,
            decider: case.decider,
            det_family: case.det_family,
            params: case.params.into(),
        }
    }
}

impl From<LanguageCase> for CaseBundle {
    fn from(case: LanguageCase) -> CaseBundle {
        CaseBundle::from_case(case)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::DerandPipeline;
    use rlnc_core::derand::hard_instances::consecutive_cycle_candidates;
    use rlnc_graph::traversal::is_connected;

    #[test]
    fn case_names_and_indexing() {
        assert_eq!(PipelineCase::ALL.len(), 3);
        assert_eq!(PipelineCase::from_index(0), PipelineCase::Coloring3);
        assert_eq!(PipelineCase::from_index(1), PipelineCase::Amos);
        assert_eq!(PipelineCase::from_index(2), PipelineCase::WeakColoring);
        assert_eq!(PipelineCase::from_index(5), PipelineCase::WeakColoring);
        let names: std::collections::HashSet<&str> =
            PipelineCase::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), 3);
        // The legacy cases are the registry's prefix, index-aligned with
        // the full catalog's sweep axis.
        for (i, case) in PipelineCase::ALL.iter().enumerate() {
            assert_eq!(case.case_id(), CaseId::from_index(i as u64));
            assert_eq!(case.name(), CaseId::from_index(i as u64).name());
        }
    }

    #[test]
    fn bundles_carry_the_registry_parameters() {
        for case in PipelineCase::ALL {
            let bundle = case.bundle();
            let registry_case = case.case_id().case();
            assert_eq!(bundle.params.p, registry_case.params.p);
            assert_eq!(bundle.params.r, registry_case.params.r);
            assert_eq!(bundle.params.t, registry_case.params.t);
            assert_eq!(bundle.params.t_prime, registry_case.params.t_prime);
            assert_eq!(bundle.det_family.len(), registry_case.det_family.len());
            assert_eq!(bundle.decider.radius(), registry_case.decider.radius());
        }
    }

    #[test]
    fn every_case_runs_the_four_stages_end_to_end_on_cycles() {
        for case in PipelineCase::ALL {
            let bundle = case.bundle();
            let pipeline = DerandPipeline::new(
                &*bundle.constructor,
                &*bundle.decider,
                &*bundle.language,
                bundle.params,
            );
            let candidates = consecutive_cycle_candidates([12, 14, 16]);
            // Stage 1: the refinement terminates and keeps enough ids.
            let probe = candidates[0].as_instance();
            let algo = &*bundle.det_family[0];
            let universe: Vec<u64> = (1..=48).collect();
            let ramsey = pipeline.ramsey_stage(algo, &[probe], &universe, 60, 11);
            assert!(ramsey.id_set.len() >= 3, "{}: refined set too small", bundle.name);
            // Stage 2: every deterministic algorithm has a hard instance.
            let algos: Vec<&dyn rlnc_core::LocalAlgorithm> =
                bundle.det_family.iter().map(|b| &**b).collect();
            let stage = pipeline.hard_instance_stage(&algos, &candidates, 0, 1);
            assert_eq!(stage.missing, 0, "{}: search came up empty", bundle.name);
            assert_eq!(stage.pool.len(), bundle.det_family.len());
            // β is strictly positive (the constructor really fails).
            let beta = pipeline.failure_probability(&stage.pool[0], 300, 5);
            assert!(beta.p_hat > 0.05, "{}: beta {} too small", bundle.name, beta.p_hat);
            // Stage 3: union acceptance decays with ν.
            let u2 = pipeline.union_stage(&stage.pool, 2);
            let u4 = pipeline.union_stage(&stage.pool, 4);
            let a2 = pipeline.union_acceptance(&u2, 300, 0);
            let a4 = pipeline.union_acceptance(&u4, 300, 0);
            assert!(
                a4.p_hat <= a2.p_hat + 0.1,
                "{}: union acceptance must not grow with nu ({} vs {})",
                bundle.name,
                a4.p_hat,
                a2.p_hat
            );
            // Stage 4: the gluing is connected and evaluable.
            let glued = pipeline.glued_stage_auto(&stage.pool, 2);
            assert!(is_connected(&glued.instance.graph));
            let far = pipeline.glued_far_acceptance(&glued, 200, 0);
            assert!((0.0..=1.0).contains(&far.p_hat));
        }
    }
}

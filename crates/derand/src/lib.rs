//! # rlnc-derand — the engine-backed Theorem-1 derandomization pipeline
//!
//! The proof of Theorem 1 is a four-stage machine: the Ramsey lift of
//! Claim 1 (restrict to an identity set on which the algorithm is
//! order-invariant), the hard-instance search of Claim 2 (one failing
//! instance per candidate algorithm, with diameter and identity-floor side
//! conditions), the error boosting of Claim 3 (acceptance on the disjoint
//! union of `ν` hard instances decays like `(1 − βp)^ν`), and the connected
//! gluing of Claims 4–5 (reconnect the union without hiding the failure).
//! `rlnc_core::derand` implements each stage faithfully — but its
//! estimators re-extract every ball on every Monte-Carlo trial and re-run
//! one BFS per anchor per trial, and the E6–E8 drivers were hard-wired to
//! one concrete coloring constructor.
//!
//! This crate turns the argument into a reusable subsystem:
//!
//! * [`DerandPipeline`] drives the four stages **generically** over any
//!   [`DistributedLanguage`](rlnc_core::DistributedLanguage) plus
//!   constructor/decider pair, producing one typed, cacheable artifact per
//!   stage ([`RamseyStage`], [`HardInstanceStage`], [`UnionStage`],
//!   [`GluedStage`]) that downstream callers — the sweep workloads, the
//!   E6–E8 drivers, `bench-export` — can inspect, reuse across trial
//!   batches, and export.
//! * Every estimator routes through `rlnc-engine`: composite instances are
//!   planned once ([`UnionPlan`](rlnc_engine::UnionPlan) /
//!   [`GluedPlan`](rlnc_engine::GluedPlan), one
//!   [`BallArena`](rlnc_graph::arena::BallArena) pass over the combined
//!   CSR) and evaluated for K seeds in blocked passes. The per-trial
//!   streams are **bit-identical** to the legacy
//!   `rlnc_core::derand` estimators (same `(master, trial)` seed tree, same
//!   `child(0)`/`child(1)` constructor/decider split) — the engine
//!   equivalence suite proves it against
//!   `boosting::disjoint_union_acceptance` and the `GluingExperiment`
//!   estimators, which remain in `rlnc-core` as the reference
//!   implementations.
//! * [`OneSidedLclDecider`] supplies the standard one-sided BPLD decider
//!   for **any** LCL language (accept good centers, reject bad centers
//!   with probability `p`; it lives in `rlnc_core::one_sided` and verdicts
//!   through the allocation-free `LclLanguage::is_bad_view` hook), and
//!   [`cases`] adapts the `rlnc-langs` **case registry**
//!   ([`rlnc_langs::registry::CaseRegistry`] — the full language catalog:
//!   coloring, `amos`, weak coloring, MIS, matching, dominating set, LLL,
//!   frugal coloring, Cole–Vishkin, majority) into pipeline bundles; the
//!   legacy [`PipelineCase`] axis of the
//!   `theorem1-pipeline` scenario is the registry's three-case prefix.
//! * The Claim-2 search accepts a shared
//!   [`PlanCache`](rlnc_engine::PlanCache)
//!   ([`DerandPipeline::hard_instance_stage_cached`]), so large algorithm
//!   families probe each candidate instance through one cached plan
//!   instead of re-planning per `(algorithm, candidate)` pair.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cases;
pub mod decider;
pub mod pipeline;

pub use cases::{CaseBundle, CaseId, CaseRegistry, LanguageCase, PipelineCase};
pub use decider::OneSidedLclDecider;
pub use pipeline::{
    deterministic_agreement, failure_probability_with, lift_agrees_with, ramsey_stage,
    DerandPipeline, GluedStage, HardInstanceStage, PipelineParams, RamseyStage, UnionStage,
};

//! Introspection over the persistent work-stealing pool.
//!
//! All parallelism in the workspace is executed by the process-global
//! pool inside the vendored `rayon` stub: parked workers with
//! per-worker deques, a shared injector, and helping callers. This
//! module is the workspace-facing chokepoint for its counters — the
//! observability layer reads [`stats`] once per trace export and
//! publishes the fields as the `pool.{tasks,steals,parks,workers}`
//! timing metrics (they depend on core count and scheduling luck, so
//! they are never part of the deterministic trace section).
//!
//! The pool size is fixed per process: the `RLNC_THREADS` environment
//! variable if set to an integer ≥ 1, else the machine's available
//! parallelism (see [`thread_count`]). `RLNC_THREADS=1` disables the
//! pool entirely — every region runs inline on its caller, which is
//! the sequential-equivalence configuration CI pins.

pub use rayon::pool::PoolStats;

/// Snapshot of the pool's lifetime counters: workers spawned, tasks
/// dispatched, steals, and parks. All zeros until the first parallel
/// region initializes the pool (or forever, with `RLNC_THREADS=1`).
pub fn stats() -> PoolStats {
    rayon::pool::stats()
}

/// The effective parallelism: `RLNC_THREADS` if set to an integer ≥ 1,
/// else available parallelism. Read once per process.
pub fn thread_count() -> usize {
    rayon::pool::thread_count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_count_is_positive_and_stable() {
        let first = thread_count();
        assert!(first >= 1);
        assert_eq!(thread_count(), first);
    }

    #[test]
    fn stats_are_monotone_across_regions() {
        let before = stats();
        let out = crate::sweep::sweep((0..64u64).collect(), |&x| x * 2);
        assert_eq!(out[63], 126);
        let after = stats();
        assert!(after.tasks >= before.tasks);
        assert!(after.workers >= before.workers);
        if thread_count() > 1 {
            // The pool is resident after the first region.
            assert_eq!(after.workers, thread_count() as u64 - 1);
        } else {
            assert_eq!(after, PoolStats::default());
        }
    }
}

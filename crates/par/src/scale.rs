//! Experiment scales: one knob that trades confidence-interval width for
//! wall-clock time.
//!
//! Every Monte-Carlo workload in the workspace (the E1–E10 experiment
//! drivers, the scenario sweeps, the criterion benchmarks) sizes itself
//! from a base trial count and a base graph size; [`Scale`] is the single
//! place where those bases are multiplied up or down. Keeping the
//! multipliers here — rather than re-deriving them per harness — guarantees
//! that "smoke" means the same thing to the CLI, the benches, and the
//! sweep executor.

use serde::{Deserialize, Serialize};

/// How much work an experiment run should do.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Scale {
    /// Minimal sizes and trial counts — used by unit/integration tests.
    Smoke,
    /// The default scale used by the `rlnc-experiments` binary and benches.
    Standard,
    /// Larger sizes and trial counts for tighter confidence intervals.
    Full,
}

impl Scale {
    /// All scales, smallest first.
    pub const ALL: [Scale; 3] = [Scale::Smoke, Scale::Standard, Scale::Full];

    /// Multiplies a base Monte-Carlo trial count according to the scale.
    pub fn trials(&self, base: u64) -> u64 {
        match self {
            Scale::Smoke => (base / 20).max(20),
            Scale::Standard => base,
            Scale::Full => base * 5,
        }
    }

    /// Scales a graph size.
    pub fn size(&self, base: usize) -> usize {
        match self {
            Scale::Smoke => (base / 4).max(8),
            Scale::Standard => base,
            Scale::Full => base * 4,
        }
    }

    /// The lower-case name used on the command line (`smoke`, `standard`,
    /// `full`).
    pub fn name(&self) -> &'static str {
        match self {
            Scale::Smoke => "smoke",
            Scale::Standard => "standard",
            Scale::Full => "full",
        }
    }
}

impl std::str::FromStr for Scale {
    type Err = String;

    /// Parses the command-line spelling of a scale (case-insensitive).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "smoke" => Ok(Scale::Smoke),
            "standard" => Ok(Scale::Standard),
            "full" => Ok(Scale::Full),
            other => Err(format!("unknown scale '{other}' (expected smoke|standard|full)")),
        }
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_adjusts_counts() {
        assert_eq!(Scale::Standard.trials(1000), 1000);
        assert!(Scale::Smoke.trials(1000) < 200);
        assert_eq!(Scale::Full.trials(1000), 5000);
        assert_eq!(Scale::Smoke.size(64), 16);
        assert_eq!(Scale::Full.size(64), 256);
        // Smoke never collapses to zero work.
        assert_eq!(Scale::Smoke.trials(1), 20);
        assert_eq!(Scale::Smoke.size(1), 8);
    }

    #[test]
    fn scale_parses_cli_spellings() {
        assert_eq!("smoke".parse::<Scale>().unwrap(), Scale::Smoke);
        assert_eq!("Standard".parse::<Scale>().unwrap(), Scale::Standard);
        assert_eq!(" FULL ".parse::<Scale>().unwrap(), Scale::Full);
        assert!("warp".parse::<Scale>().is_err());
        for scale in Scale::ALL {
            assert_eq!(scale.name().parse::<Scale>().unwrap(), scale);
            assert_eq!(format!("{scale}"), scale.name());
        }
    }
}

//! Parallel parameter sweeps.
//!
//! An experiment is usually a grid of configurations (graph size × relaxation
//! parameter × decider guarantee), each of which internally runs its own
//! Monte-Carlo estimate. [`sweep`] evaluates the grid in parallel while
//! keeping the output in input order, and [`grid2`]/[`grid3`] build the
//! cartesian products.

use rayon::prelude::*;

/// Evaluates `f` on every configuration, in parallel, preserving order.
pub fn sweep<C, T, F>(configs: Vec<C>, f: F) -> Vec<T>
where
    C: Send + Sync,
    T: Send,
    F: Fn(&C) -> T + Sync,
{
    configs.par_iter().map(|c| f(c)).collect()
}

/// Evaluates `f` sequentially (for nested sweeps where the inner level is
/// already parallel).
pub fn sweep_sequential<C, T, F>(configs: Vec<C>, f: F) -> Vec<T>
where
    F: Fn(&C) -> T,
{
    configs.iter().map(f).collect()
}

/// Number of resident worker threads the vendored `rayon` stub's
/// persistent pool has spawned since process start — a *timing-section*
/// metric (it depends on core count / `RLNC_THREADS`, never on
/// results). The pool spawns its workers exactly once, on the first
/// real parallel region, and parks them between regions, so this stays
/// at `thread_count() - 1` for the life of the process (0 before the
/// first region, or always under `RLNC_THREADS=1`). Kept under its
/// historical name so `rayon.scoped_spawns` traces stay comparable
/// across the scoped-thread → pool transition; the richer per-region
/// counters live in [`crate::pool::stats`].
///
/// This wrapper is the single site to patch when swapping the vendored
/// stub back to crates.io `rayon`: count `ThreadPoolBuilder` spawns via
/// its `spawn_handler` (the semantics — threads spawned into the
/// resident pool — now match upstream's one-time spawn model exactly).
pub fn scoped_spawn_count() -> u64 {
    rayon::scoped_spawn_count()
}

/// Cartesian product of two parameter axes.
pub fn grid2<A: Clone, B: Clone>(a: &[A], b: &[B]) -> Vec<(A, B)> {
    let mut out = Vec::with_capacity(a.len() * b.len());
    for x in a {
        for y in b {
            out.push((x.clone(), y.clone()));
        }
    }
    out
}

/// Cartesian product of three parameter axes.
pub fn grid3<A: Clone, B: Clone, C: Clone>(a: &[A], b: &[B], c: &[C]) -> Vec<(A, B, C)> {
    let mut out = Vec::with_capacity(a.len() * b.len() * c.len());
    for x in a {
        for y in b {
            for z in c {
                out.push((x.clone(), y.clone(), z.clone()));
            }
        }
    }
    out
}

/// Splits `0..n` into at most `chunks` contiguous ranges of nearly equal
/// size (used to batch per-node work in the simulator).
pub fn balanced_ranges(n: usize, chunks: usize) -> Vec<std::ops::Range<usize>> {
    if n == 0 || chunks == 0 {
        return Vec::new();
    }
    let chunks = chunks.min(n);
    let base = n / chunks;
    let extra = n % chunks;
    let mut out = Vec::with_capacity(chunks);
    let mut start = 0usize;
    for i in 0..chunks {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_preserves_order() {
        let configs: Vec<u64> = (0..100).collect();
        let out = sweep(configs.clone(), |&c| c * c);
        assert_eq!(out, configs.iter().map(|c| c * c).collect::<Vec<_>>());
        let seq = sweep_sequential(configs.clone(), |&c| c + 1);
        assert_eq!(seq[0], 1);
        assert_eq!(seq[99], 100);
    }

    #[test]
    fn grids_have_expected_sizes() {
        let g = grid2(&[1, 2, 3], &["a", "b"]);
        assert_eq!(g.len(), 6);
        assert_eq!(g[0], (1, "a"));
        assert_eq!(g[5], (3, "b"));
        let g3 = grid3(&[1, 2], &[10, 20], &[100]);
        assert_eq!(g3.len(), 4);
        assert_eq!(g3[3], (2, 20, 100));
    }

    #[test]
    fn balanced_ranges_cover_everything() {
        let ranges = balanced_ranges(10, 3);
        assert_eq!(ranges.len(), 3);
        let total: usize = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(total, 10);
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges.last().unwrap().end, 10);
        // Degenerate cases.
        assert!(balanced_ranges(0, 4).is_empty());
        assert!(balanced_ranges(5, 0).is_empty());
        assert_eq!(balanced_ranges(3, 10).len(), 3);
    }
}

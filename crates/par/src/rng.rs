//! Deterministic seed derivation and per-trial RNG streams.
//!
//! A Monte-Carlo run is reproducible if and only if the random stream fed
//! to trial `i` does not depend on which thread happens to execute it. We
//! therefore never share a single RNG across trials: each trial (and, in
//! the LOCAL-model simulator, each *node* within a trial — the paper's
//! "private source of independent random bits") derives its own ChaCha8
//! stream from a master seed via a SplitMix64 mixing function.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// SplitMix64 finalizer: a cheap, well-mixed 64 → 64 bit hash used to
/// derive independent sub-seeds from `(master, index)` pairs.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a sub-seed for stream `index` of the given `master` seed.
///
/// Distinct `(master, index)` pairs give (with overwhelming probability)
/// distinct, decorrelated seeds.
#[inline]
pub fn derive_seed(master: u64, index: u64) -> u64 {
    splitmix64(master ^ splitmix64(index.wrapping_mul(0xA24B_AED4_963E_E407)))
}

/// Derives a sub-seed from a master seed and two indices (e.g. trial and
/// node), used for the per-node private coins of randomized LOCAL
/// algorithms.
#[inline]
pub fn derive_seed2(master: u64, a: u64, b: u64) -> u64 {
    derive_seed(derive_seed(master, a), b)
}

/// Creates a ChaCha8 RNG from a 64-bit seed.
pub fn rng_from_seed(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// A hierarchical seed sequence: a master seed plus a path of indices.
///
/// `SeedSequence::new(42).child(3).child(7).rng()` always yields the same
/// stream, independent of thread scheduling, making nested experiments
/// (sweep → trial → node) reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    state: u64,
}

impl SeedSequence {
    /// Starts a sequence from a master seed.
    pub fn new(master: u64) -> Self {
        SeedSequence {
            state: splitmix64(master),
        }
    }

    /// Derives the child sequence with the given index.
    pub fn child(&self, index: u64) -> Self {
        SeedSequence {
            state: derive_seed(self.state, index),
        }
    }

    /// The raw 64-bit seed at this point of the hierarchy.
    pub fn seed(&self) -> u64 {
        self.state
    }

    /// Materializes a ChaCha8 RNG for this node of the hierarchy.
    pub fn rng(&self) -> ChaCha8Rng {
        rng_from_seed(self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_is_deterministic_and_not_identity() {
        assert_eq!(splitmix64(0), splitmix64(0));
        assert_ne!(splitmix64(1), 1);
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn derived_seeds_differ_across_indices() {
        let master = 0xDEAD_BEEF;
        let seeds: Vec<u64> = (0..1000).map(|i| derive_seed(master, i)).collect();
        let unique: std::collections::HashSet<u64> = seeds.iter().copied().collect();
        assert_eq!(unique.len(), seeds.len());
    }

    #[test]
    fn derived_seeds_differ_across_masters() {
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
        assert_ne!(derive_seed2(1, 2, 3), derive_seed2(1, 3, 2));
    }

    #[test]
    fn seed_sequence_is_reproducible() {
        let a = SeedSequence::new(99).child(5).child(11);
        let b = SeedSequence::new(99).child(5).child(11);
        assert_eq!(a.seed(), b.seed());
        let mut ra = a.rng();
        let mut rb = b.rng();
        for _ in 0..16 {
            assert_eq!(ra.random::<u64>(), rb.random::<u64>());
        }
    }

    #[test]
    fn sibling_sequences_are_decorrelated() {
        let parent = SeedSequence::new(7);
        let seeds: Vec<u64> = (0..256).map(|i| parent.child(i).seed()).collect();
        let unique: std::collections::HashSet<u64> = seeds.iter().copied().collect();
        assert_eq!(unique.len(), 256);
    }
}

//! Parallel Monte-Carlo trial execution.
//!
//! [`MonteCarlo`] runs `N` independent trials of a user closure. Each trial
//! receives a [`SeedSequence`] derived from `(master seed, trial index)`,
//! so results do not depend on the parallel schedule; trials are spread
//! over the Rayon thread pool. A runner that finds itself already inside a
//! parallel region (via `rayon::current_thread_index`) degrades to
//! sequential execution automatically, so nesting Monte-Carlo loops never
//! multiplies thread counts — and never changes a result.

use crate::rng::SeedSequence;
use crate::stats::{Estimate, Summary};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Outcome of a single Monte-Carlo trial when more than a boolean is needed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrialOutcome {
    /// Whether the trial counts as a success.
    pub success: bool,
    /// A real-valued measurement attached to the trial (e.g. fraction of
    /// properly colored nodes, number of rejecting nodes).
    pub value: f64,
}

impl TrialOutcome {
    /// A purely boolean outcome.
    pub fn from_bool(success: bool) -> Self {
        TrialOutcome {
            success,
            value: if success { 1.0 } else { 0.0 },
        }
    }
}

/// A Monte-Carlo experiment configuration: number of trials, master seed,
/// and whether to parallelize.
#[derive(Debug, Clone, Copy)]
pub struct MonteCarlo {
    trials: u64,
    master_seed: u64,
    parallel: bool,
}

impl MonteCarlo {
    /// Creates a runner with the given number of trials and a fixed default
    /// seed (reproducible by default).
    pub fn new(trials: u64) -> Self {
        assert!(trials > 0, "at least one trial is required");
        MonteCarlo {
            trials,
            master_seed: 0x5AA5_1DE0_2015_0627, // SPAA 2015 vintage
            parallel: true,
        }
    }

    /// Overrides the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.master_seed = seed;
        self
    }

    /// Forces sequential execution. Rarely needed: a parallel runner
    /// invoked from inside an already-parallel region detects the nesting
    /// and runs sequentially on its own; this override remains for
    /// debugging and scheduling-sensitive tests.
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Whether this invocation should actually fan out: the configured
    /// flag, gated on not already running inside a parallel region.
    fn fan_out(&self) -> bool {
        self.parallel && rayon::current_thread_index().is_none()
    }

    /// Number of trials this runner performs.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Runs a boolean-valued experiment and returns the probability
    /// estimate of `trial` returning `true`.
    pub fn estimate<F>(&self, trial: F) -> Estimate
    where
        F: Fn(SeedSequence) -> bool + Sync,
    {
        let successes = if self.fan_out() {
            (0..self.trials)
                .into_par_iter()
                .map(|i| u64::from(trial(self.trial_seed(i))))
                .sum()
        } else {
            (0..self.trials)
                .map(|i| u64::from(trial(self.trial_seed(i))))
                .sum()
        };
        Estimate::from_counts(successes, self.trials)
    }

    /// Runs a real-valued experiment and returns summary statistics of the
    /// per-trial values.
    pub fn summarize<F>(&self, trial: F) -> Summary
    where
        F: Fn(SeedSequence) -> f64 + Sync,
    {
        let values: Vec<f64> = if self.fan_out() {
            (0..self.trials)
                .into_par_iter()
                .map(|i| trial(self.trial_seed(i)))
                .collect()
        } else {
            (0..self.trials).map(|i| trial(self.trial_seed(i))).collect()
        };
        Summary::of(&values)
    }

    /// Runs an experiment returning a full [`TrialOutcome`] and produces
    /// both the success-probability estimate and the value summary.
    pub fn run<F>(&self, trial: F) -> (Estimate, Summary)
    where
        F: Fn(SeedSequence) -> TrialOutcome + Sync,
    {
        let outcomes: Vec<TrialOutcome> = if self.fan_out() {
            (0..self.trials)
                .into_par_iter()
                .map(|i| trial(self.trial_seed(i)))
                .collect()
        } else {
            (0..self.trials).map(|i| trial(self.trial_seed(i))).collect()
        };
        let successes = outcomes.iter().filter(|o| o.success).count() as u64;
        let values: Vec<f64> = outcomes.iter().map(|o| o.value).collect();
        (Estimate::from_counts(successes, self.trials), Summary::of(&values))
    }

    /// Seed sequence handed to trial `i`.
    pub fn trial_seed(&self, i: u64) -> SeedSequence {
        SeedSequence::new(self.master_seed).child(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn estimate_of_fair_coin_is_near_half() {
        let mc = MonteCarlo::new(20_000).with_seed(1);
        let e = mc.estimate(|seq| seq.rng().random_bool(0.5));
        assert!(e.covers(0.5), "estimate {:?} should cover 0.5", e);
        assert!(e.half_width() < 0.02);
    }

    #[test]
    fn parallel_and_sequential_agree_exactly() {
        let trial = |seq: SeedSequence| seq.rng().random_bool(0.37);
        let par = MonteCarlo::new(5_000).with_seed(7).estimate(trial);
        let seq = MonteCarlo::new(5_000).with_seed(7).sequential().estimate(trial);
        assert_eq!(par.successes, seq.successes);
    }

    #[test]
    fn different_seeds_give_different_counts() {
        let trial = |seq: SeedSequence| seq.rng().random_bool(0.5);
        let a = MonteCarlo::new(2_000).with_seed(1).estimate(trial);
        let b = MonteCarlo::new(2_000).with_seed(2).estimate(trial);
        assert_ne!(a.successes, b.successes);
    }

    #[test]
    fn summarize_means_match_expectation() {
        let mc = MonteCarlo::new(10_000).with_seed(3);
        let s = mc.summarize(|seq| {
            let mut rng = seq.rng();
            rng.random_range(0.0..1.0)
        });
        assert!((s.mean - 0.5).abs() < 0.02);
        assert_eq!(s.count, 10_000);
    }

    #[test]
    fn run_returns_consistent_estimate_and_summary() {
        let mc = MonteCarlo::new(4_000).with_seed(11);
        let (est, sum) = mc.run(|seq| {
            let mut rng = seq.rng();
            let x: f64 = rng.random_range(0.0..1.0);
            TrialOutcome {
                success: x < 0.25,
                value: x,
            }
        });
        assert!(est.covers(0.25));
        assert!((sum.mean - 0.5).abs() < 0.05);
    }

    #[test]
    fn outcome_from_bool() {
        assert_eq!(TrialOutcome::from_bool(true).value, 1.0);
        assert!(!TrialOutcome::from_bool(false).success);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        let _ = MonteCarlo::new(0);
    }
}

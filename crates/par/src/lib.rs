//! # rlnc-par — parallel Monte-Carlo execution, deterministic RNG streams,
//! and statistics
//!
//! Every quantitative claim in *Randomized Local Network Computing* is a
//! probability statement: the guarantee of a decider, the success
//! probability of a Monte-Carlo constructor, the decay of the acceptance
//! probability on glued instances. The experiment harness therefore spends
//! nearly all of its time running independent Monte-Carlo trials, which is
//! embarrassingly parallel work; this crate provides:
//!
//! * [`rng`]: SplitMix64-based seed derivation and per-trial/per-node
//!   ChaCha streams, so that every experiment is reproducible bit-for-bit
//!   regardless of how trials are scheduled across threads.
//! * [`trials`]: a Rayon-backed Monte-Carlo runner that turns a
//!   `Fn(seed) -> bool` (or `-> f64`) into a Bernoulli / mean estimate with
//!   confidence intervals.
//! * [`stats`]: Wilson score intervals, summary statistics, histograms.
//! * [`sweep`]: chunked parallel parameter sweeps.
//! * [`pool`]: introspection over the persistent work-stealing pool that
//!   executes all of the above (size, task/steal/park counters, the
//!   `RLNC_THREADS` override).
//! * [`scale`]: the shared smoke/standard/full work-scaling knob used by
//!   the experiment drivers, the sweep engine, and the benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pool;
pub mod rng;
pub mod scale;
pub mod stats;
pub mod sweep;
pub mod trials;

pub use rng::{derive_seed, SeedSequence};
pub use scale::Scale;
pub use stats::{mean, wilson_interval, Estimate, Summary};
pub use trials::{MonteCarlo, TrialOutcome};

//! Summary statistics and confidence intervals for Monte-Carlo estimates.

use serde::{Deserialize, Serialize};

/// A Bernoulli (probability) estimate with a Wilson score interval.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Estimate {
    /// Number of successes observed.
    pub successes: u64,
    /// Number of trials run.
    pub trials: u64,
    /// Point estimate `successes / trials`.
    pub p_hat: f64,
    /// Lower end of the 95% Wilson score interval.
    pub lower: f64,
    /// Upper end of the 95% Wilson score interval.
    pub upper: f64,
}

impl Estimate {
    /// Builds an estimate from success/trial counts (95% interval).
    pub fn from_counts(successes: u64, trials: u64) -> Self {
        assert!(trials > 0, "cannot estimate a probability from zero trials");
        assert!(successes <= trials);
        let p_hat = successes as f64 / trials as f64;
        let (lower, upper) = wilson_interval(successes, trials, 1.959_964);
        Estimate {
            successes,
            trials,
            p_hat,
            lower,
            upper,
        }
    }

    /// Half-width of the confidence interval.
    pub fn half_width(&self) -> f64 {
        (self.upper - self.lower) / 2.0
    }

    /// Returns `true` if the interval contains `value`.
    pub fn covers(&self, value: f64) -> bool {
        self.lower <= value && value <= self.upper
    }

    /// Returns `true` if the whole interval lies strictly above `threshold`
    /// (used for "guarantee > 1/2" style assertions).
    pub fn strictly_above(&self, threshold: f64) -> bool {
        self.lower > threshold
    }

    /// Returns `true` if the whole interval lies strictly below `threshold`.
    pub fn strictly_below(&self, threshold: f64) -> bool {
        self.upper < threshold
    }
}

/// Wilson score interval for a binomial proportion.
///
/// `z` is the standard-normal quantile (1.96 for 95%). The Wilson interval
/// behaves sensibly for proportions near 0 and 1, which matters here
/// because many of the paper's probabilities (e.g. acceptance of glued
/// instances) are driven toward the extremes.
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * ((p * (1.0 - p) / n) + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Arithmetic mean of a slice (0 for an empty slice).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Sample variance (unbiased; 0 for fewer than two values).
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (values.len() - 1) as f64
}

/// Summary statistics of a sample of real values.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample. Returns a zeroed summary for an empty sample.
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        Summary {
            count: values.len(),
            mean: mean(values),
            std_dev: variance(values).sqrt(),
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev / (self.count as f64).sqrt()
        }
    }
}

/// Integer-valued histogram with fixed bucket width 1, used e.g. for
/// "number of improperly colored nodes" distributions.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one observation of `value`.
    pub fn record(&mut self, value: usize) {
        if value >= self.counts.len() {
            self.counts.resize(value + 1, 0);
        }
        self.counts[value] += 1;
        self.total += 1;
    }

    /// Number of observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count of observations equal to `value`.
    pub fn count(&self, value: usize) -> u64 {
        self.counts.get(value).copied().unwrap_or(0)
    }

    /// Empirical probability that an observation is at most `value`.
    pub fn cdf(&self, value: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let upto: u64 = self.counts.iter().take(value + 1).sum();
        upto as f64 / self.total as f64
    }

    /// Mean of the recorded observations.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let weighted: u64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(v, &c)| v as u64 * c)
            .sum();
        weighted as f64 / self.total as f64
    }

    /// Largest value observed, if any.
    pub fn max(&self) -> Option<usize> {
        self.counts.iter().rposition(|&c| c > 0)
    }

    /// Merges another histogram into this one (used by parallel reductions).
    pub fn merge(&mut self, other: &Histogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (i, &c) in other.counts.iter().enumerate() {
            self.counts[i] += c;
        }
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimate_from_counts() {
        let e = Estimate::from_counts(618, 1000);
        assert!((e.p_hat - 0.618).abs() < 1e-12);
        assert!(e.lower < 0.618 && 0.618 < e.upper);
        assert!(e.covers(0.62));
        assert!(e.strictly_above(0.5));
        assert!(e.strictly_below(0.7));
        assert!(e.half_width() < 0.04);
    }

    #[test]
    #[should_panic(expected = "zero trials")]
    fn estimate_requires_trials() {
        let _ = Estimate::from_counts(0, 0);
    }

    #[test]
    fn wilson_interval_extremes() {
        let (lo, hi) = wilson_interval(0, 100, 1.96);
        assert!(lo < 1e-9);
        assert!(hi < 0.05);
        let (lo, hi) = wilson_interval(100, 100, 1.96);
        assert!(lo > 0.95);
        assert!(hi > 1.0 - 1e-9 || hi <= 1.0);
        assert!(hi >= lo && hi <= 1.0);
    }

    #[test]
    fn wilson_interval_shrinks_with_trials() {
        let (lo1, hi1) = wilson_interval(50, 100, 1.96);
        let (lo2, hi2) = wilson_interval(5000, 10000, 1.96);
        assert!(hi2 - lo2 < hi1 - lo1);
    }

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn summary_of_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0]);
        assert_eq!(s.count, 3);
        assert!((s.mean - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert!(s.std_error() > 0.0);
        let empty = Summary::of(&[]);
        assert_eq!(empty.count, 0);
        assert_eq!(empty.std_error(), 0.0);
    }

    #[test]
    fn histogram_counts_and_cdf() {
        let mut h = Histogram::new();
        for v in [0usize, 1, 1, 2, 5] {
            h.record(v);
        }
        assert_eq!(h.total(), 5);
        assert_eq!(h.count(1), 2);
        assert_eq!(h.count(9), 0);
        assert!((h.cdf(1) - 0.6).abs() < 1e-12);
        assert!((h.cdf(5) - 1.0).abs() < 1e-12);
        assert!((h.mean() - 1.8).abs() < 1e-12);
        assert_eq!(h.max(), Some(5));
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        a.record(1);
        let mut b = Histogram::new();
        b.record(3);
        b.record(1);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.count(1), 2);
        assert_eq!(a.count(3), 1);
    }
}
